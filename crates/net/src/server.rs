//! The DBGC server: receive bitstreams, decompress or store them directly.
//!
//! The paper's server either decompresses `B` into `PC'` for processing or
//! "bypasses the decompression procedure and directly stores B" (§3.1). Both
//! modes are supported; the in-memory store stands in for the ODBC sink.

use std::io::Read;
use std::path::PathBuf;

use dbgc_geom::PointCloud;

use crate::protocol::{read_frame_resync, NetError};

/// A received frame: the raw bitstream plus, when decompression is enabled,
/// the restored point cloud.
#[derive(Debug, Clone)]
pub struct StoredFrame {
    /// Sequence number from the wire.
    pub sequence: u32,
    /// The received DBGC bitstream.
    pub bytes: Vec<u8>,
    /// The decompressed cloud, when decompression is enabled.
    pub cloud: Option<PointCloud>,
}

/// Record of data the server discarded instead of desyncing or dying:
/// a corrupt wire region it resynchronized past, or a checksummed frame
/// whose payload failed to decompress.
#[derive(Debug, Clone)]
pub struct DroppedFrame {
    /// Sequence number, when the frame's header survived well enough to
    /// report one.
    pub sequence: Option<u32>,
    /// Corrupt wire bytes skipped while resynchronizing (0 for decode drops).
    pub bytes_skipped: u64,
    /// Human-readable reason, for logs.
    pub reason: String,
}

/// Optional metrics sink (always `None` with the `metrics` feature off).
#[cfg(feature = "metrics")]
type MetricsSink = Option<dbgc_metrics::Collector>;
#[cfg(not(feature = "metrics"))]
type MetricsSink = Option<std::convert::Infallible>;

/// Receives and stores compressed point-cloud frames.
#[derive(Debug)]
pub struct Server<R: Read> {
    transport: R,
    decompress: bool,
    store: Vec<StoredFrame>,
    dropped: Vec<DroppedFrame>,
    /// Optional on-disk sink: every received bitstream is also written as
    /// `frame-<seq>.dbgc` here (stands in for the paper's ODBC storage).
    disk_store: Option<PathBuf>,
    #[cfg_attr(not(feature = "metrics"), allow(dead_code))]
    metrics: MetricsSink,
}

impl<R: Read> Server<R> {
    /// `decompress = false` reproduces the "store B directly" mode.
    pub fn new(transport: R, decompress: bool) -> Server<R> {
        Server {
            transport,
            decompress,
            store: Vec::new(),
            dropped: Vec::new(),
            disk_store: None,
            metrics: None,
        }
    }

    /// Record per-connection observability data into `collector`:
    /// `net.frames_received` / `net.bytes_received` for stored frames,
    /// `net.frames_dropped` / `net.decode_failures` for discarded ones,
    /// `net.resyncs` / `net.bytes_skipped` for wire-level recovery, and a
    /// `net.frame_bytes` size histogram. When decompression is enabled the
    /// decoder also records its stage spans into the same collector.
    #[cfg(feature = "metrics")]
    pub fn with_metrics(mut self, collector: &dbgc_metrics::Collector) -> Server<R> {
        self.metrics = Some(collector.clone());
        self
    }

    /// Additionally persist every received bitstream into `dir` as
    /// `frame-<seq>.dbgc`. The directory is created if missing.
    pub fn with_disk_store(mut self, dir: impl Into<PathBuf>) -> std::io::Result<Server<R>> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        self.disk_store = Some(dir);
        Ok(self)
    }

    /// Receive one frame; `Ok(false)` on clean end of stream.
    ///
    /// Corruption never kills the stream: a frame that fails its wire
    /// checksum (or leaves the reader desynced) is skipped via
    /// resynchronization, and a checksummed frame whose payload fails to
    /// decompress is discarded. Both are recorded in [`Server::dropped`] and
    /// reception continues with the next frame.
    pub fn receive_one(&mut self) -> Result<bool, NetError> {
        loop {
            let (wire, skipped) = match read_frame_resync(&mut self.transport) {
                Ok(x) => x,
                Err(NetError::Closed) => return Ok(false),
                Err(e) => return Err(e),
            };
            if skipped > 0 {
                #[cfg(feature = "metrics")]
                if let Some(c) = &self.metrics {
                    c.incr("net.resyncs", 1);
                    c.incr("net.bytes_skipped", skipped);
                    c.incr("net.frames_dropped", 1);
                }
                self.dropped.push(DroppedFrame {
                    sequence: None,
                    bytes_skipped: skipped,
                    reason: format!("resynchronized past {skipped} corrupt wire bytes"),
                });
            }
            let cloud = if self.decompress {
                let decoded = {
                    #[cfg(feature = "metrics")]
                    match &self.metrics {
                        Some(c) => dbgc::decompress_with_metrics(&wire.payload, c),
                        None => dbgc::decompress(&wire.payload),
                    }
                    #[cfg(not(feature = "metrics"))]
                    dbgc::decompress(&wire.payload)
                };
                match decoded {
                    Ok((cloud, _)) => Some(cloud),
                    Err(e) => {
                        #[cfg(feature = "metrics")]
                        if let Some(c) = &self.metrics {
                            c.incr("net.decode_failures", 1);
                            c.incr("net.frames_dropped", 1);
                        }
                        self.dropped.push(DroppedFrame {
                            sequence: Some(wire.sequence),
                            bytes_skipped: 0,
                            reason: format!("frame {} failed to decode: {e}", wire.sequence),
                        });
                        continue;
                    }
                }
            } else {
                None
            };
            if let Some(dir) = &self.disk_store {
                std::fs::write(dir.join(format!("frame-{}.dbgc", wire.sequence)), &wire.payload)?;
            }
            #[cfg(feature = "metrics")]
            if let Some(c) = &self.metrics {
                c.incr("net.frames_received", 1);
                c.incr("net.bytes_received", wire.payload.len() as u64);
                c.record("net.frame_bytes", wire.payload.len() as u64);
            }
            self.store.push(StoredFrame { sequence: wire.sequence, bytes: wire.payload, cloud });
            return Ok(true);
        }
    }

    /// Receive until the stream closes; returns the number of frames.
    pub fn receive_all(&mut self) -> Result<usize, NetError> {
        let mut n = 0;
        while self.receive_one()? {
            n += 1;
        }
        Ok(n)
    }

    /// All frames received so far.
    pub fn frames(&self) -> &[StoredFrame] {
        &self.store
    }

    /// Frames and wire regions discarded due to corruption.
    pub fn dropped(&self) -> &[DroppedFrame] {
        &self.dropped
    }

    /// Consume the server, returning its stored frames.
    pub fn into_frames(self) -> Vec<StoredFrame> {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::link::throttled_pipe;
    use dbgc::Dbgc;
    use dbgc_geom::Point3;

    fn toy_cloud(n: usize) -> PointCloud {
        (0..n)
            .map(|i| {
                let th = i as f64 / n as f64 * std::f64::consts::TAU;
                Point3::new(12.0 * th.cos(), 12.0 * th.sin(), -1.7)
            })
            .collect()
    }

    #[test]
    fn client_server_over_pipe_with_decompression() {
        let (writer, reader) = throttled_pipe(None);
        let clouds: Vec<PointCloud> = (1..4).map(|k| toy_cloud(k * 500)).collect();
        let sent = {
            let clouds = clouds.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(Dbgc::with_error_bound(0.02), writer);
                let frames: Vec<_> = clouds.iter().map(|c| client.send_cloud(c).unwrap()).collect();
                frames
            })
        };
        let mut server = Server::new(reader, true);
        let n = server.receive_all().unwrap();
        let frames = sent.join().unwrap();
        assert_eq!(n, 3);
        for (i, stored) in server.frames().iter().enumerate() {
            assert_eq!(stored.sequence, i as u32);
            let cloud = stored.cloud.as_ref().unwrap();
            assert_eq!(cloud.len(), clouds[i].len());
            dbgc::verify_roundtrip(&clouds[i], cloud, &frames[i], 0.02).unwrap();
        }
    }

    #[test]
    fn store_without_decompression() {
        let (writer, reader) = throttled_pipe(None);
        let cloud = toy_cloud(800);
        let handle = std::thread::spawn(move || {
            let mut client = Client::new(Dbgc::with_error_bound(0.02), writer);
            client.send_cloud(&cloud).unwrap().bytes
        });
        let mut server = Server::new(reader, false);
        assert_eq!(server.receive_all().unwrap(), 1);
        let bytes = handle.join().unwrap();
        assert_eq!(server.frames()[0].bytes, bytes);
        assert!(server.frames()[0].cloud.is_none());
    }

    #[test]
    fn disk_store_persists_streams() {
        let dir = std::env::temp_dir().join("dbgc_server_store_test");
        let _ = std::fs::remove_dir_all(&dir);
        let (writer, reader) = throttled_pipe(None);
        let cloud = toy_cloud(600);
        let handle = std::thread::spawn(move || {
            let mut client = Client::new(Dbgc::with_error_bound(0.02), writer);
            client.send_cloud(&cloud).unwrap().bytes
        });
        let mut server = Server::new(reader, false).with_disk_store(&dir).unwrap();
        server.receive_all().unwrap();
        let bytes = handle.join().unwrap();
        let persisted = std::fs::read(dir.join("frame-0.dbgc")).unwrap();
        assert_eq!(persisted, bytes);
        // Stored file decompresses on its own.
        let (restored, _) = dbgc::decompress(&persisted).unwrap();
        assert_eq!(restored.len(), 600);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_frame_dropped_stream_continues() {
        // Build a 3-frame byte stream, flip bytes in the middle frame, and
        // check the server stores frames 0 and 2 while recording the drop.
        use crate::protocol::{write_frame, WireFrame};
        let clouds: Vec<PointCloud> = (1..4).map(|k| toy_cloud(k * 300)).collect();
        let mut buf = Vec::new();
        let mut offsets = vec![0usize];
        for (i, c) in clouds.iter().enumerate() {
            let payload = Dbgc::with_error_bound(0.02).compress(c).unwrap().bytes;
            write_frame(&mut buf, &WireFrame { sequence: i as u32, payload }).unwrap();
            offsets.push(buf.len());
        }
        // Flip a few payload bytes inside frame 1.
        let mid = (offsets[1] + offsets[2]) / 2;
        for d in 0..3 {
            buf[mid + d * 7] ^= 0x55;
        }
        let mut server = Server::new(&buf[..], true);
        let n = server.receive_all().unwrap();
        assert_eq!(n, 2, "two intact frames received");
        assert_eq!(server.frames()[0].cloud.as_ref().unwrap().len(), clouds[0].len());
        assert_eq!(server.frames()[1].cloud.as_ref().unwrap().len(), clouds[2].len());
        assert_eq!(server.dropped().len(), 1, "the corrupt frame is recorded");
        assert!(server.dropped()[0].bytes_skipped > 0);
    }

    #[test]
    fn tcp_transport_roundtrip() {
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let cloud = toy_cloud(1000);
        let client_cloud = cloud.clone();
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut client = Client::new(Dbgc::with_error_bound(0.02), stream);
            client.send_cloud(&client_cloud).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = Server::new(stream, true);
        assert_eq!(server.receive_all().unwrap(), 1);
        client.join().unwrap();
        assert_eq!(server.frames()[0].cloud.as_ref().unwrap().len(), cloud.len());
    }
}
