//! Deterministic fault injection for transport chaos testing.
//!
//! A [`FaultSchedule`] is a finite, sorted list of [`FaultEvent`]s keyed by
//! absolute byte offset in the sender's intended output stream. Wrapping any
//! `Write` in a [`FaultyLink`] applies the schedule as bytes flow through:
//! bit flips, dropped ranges (truncation), mid-frame disconnects, stalls and
//! latency spikes, duplicated and reordered wire chunks, and bandwidth
//! collapse windows (a 4G uplink degrading to ~1 Mbps).
//!
//! Everything is replayable: [`FaultSchedule::generate`] derives a schedule
//! from a seed and a [`FaultProfile`], and the schedule serializes to bytes
//! ([`FaultSchedule::to_bytes`] / [`FaultSchedule::from_bytes`]) so failing
//! schedules can be minimized and checked into a regression corpus like any
//! other fuzz input. The byte codec is total: `from_bytes` never panics and
//! clamps hostile values (event counts, stall durations) so a mutated
//! schedule is still a safe, terminating schedule.
//!
//! The wrapper composes with [`crate::link::throttled_pipe`]: throttle first
//! for the bandwidth model, then wrap the writer in a `FaultyLink` for the
//! failure model. State is shared through an [`std::sync::Arc`], so a
//! reconnecting client can wrap each new connection in a fresh `FaultyLink`
//! over the *same* advancing schedule — faults keep arriving at their
//! scheduled offsets across reconnects.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Upper bound on events accepted when decoding a schedule from bytes; keeps
/// hostile inputs from building unbounded schedules.
pub const MAX_EVENTS: usize = 4096;
/// Per-event stall/collapse sleep clamp (ms); also bounds the whole-schedule
/// sleep budget via [`MAX_TOTAL_SLEEP`].
pub const MAX_EVENT_SLEEP_MS: u64 = 250;
/// Total sleeping a schedule may cause, whatever its events say. Keeps a
/// mutated schedule from turning into a denial-of-service on the harness.
pub const MAX_TOTAL_SLEEP: Duration = Duration::from_secs(2);

/// One scheduled transport fault, triggered when the sender's cumulative
/// byte offset crosses `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Flip bit `bit & 7` of the byte at offset `at`.
    FlipBit {
        /// Absolute stream offset of the victim byte.
        at: u64,
        /// Bit index (masked to 0..8).
        bit: u8,
    },
    /// Silently drop `len` bytes starting at `at` (wire truncation).
    Drop {
        /// Absolute stream offset where the hole starts.
        at: u64,
        /// Bytes swallowed.
        len: u32,
    },
    /// Kill the connection once `at` bytes were attempted: the write that
    /// crosses the offset delivers the bytes before it, then fails with
    /// `ConnectionReset`; every later write on this link fails too.
    Disconnect {
        /// Absolute stream offset of the cut.
        at: u64,
    },
    /// Latency spike: sleep `ms` when the stream crosses `at`.
    Stall {
        /// Absolute stream offset of the spike.
        at: u64,
        /// Spike duration in milliseconds (clamped).
        ms: u16,
    },
    /// Re-deliver the `len` bytes preceding `at` (duplicated wire chunk).
    Duplicate {
        /// Absolute stream offset after the chunk to repeat.
        at: u64,
        /// Chunk length (bounded by the link's history window).
        len: u32,
    },
    /// Swap the `len` bytes at `at` with the `len` bytes that follow them
    /// (reordered wire chunks).
    Reorder {
        /// Absolute stream offset of the first chunk.
        at: u64,
        /// Chunk length of each half.
        len: u32,
    },
    /// Bandwidth collapse: pace the `bytes` following `at` at `kbps` —
    /// modelled as a proportional sleep, clamped by the sleep budget.
    Collapse {
        /// Absolute stream offset where the collapse window opens.
        at: u64,
        /// Window length in bytes.
        bytes: u32,
        /// Collapsed bandwidth in kilobits per second (min 1).
        kbps: u32,
    },
}

impl FaultEvent {
    /// The stream offset this event triggers at.
    pub fn offset(&self) -> u64 {
        match *self {
            FaultEvent::FlipBit { at, .. }
            | FaultEvent::Drop { at, .. }
            | FaultEvent::Disconnect { at }
            | FaultEvent::Stall { at, .. }
            | FaultEvent::Duplicate { at, .. }
            | FaultEvent::Reorder { at, .. }
            | FaultEvent::Collapse { at, .. } => at,
        }
    }

    /// Short kind name for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultEvent::FlipBit { .. } => "bit-flip",
            FaultEvent::Drop { .. } => "drop",
            FaultEvent::Disconnect { .. } => "disconnect",
            FaultEvent::Stall { .. } => "stall",
            FaultEvent::Duplicate { .. } => "duplicate",
            FaultEvent::Reorder { .. } => "reorder",
            FaultEvent::Collapse { .. } => "collapse",
        }
    }
}

/// Relative intensity of each fault class when generating a schedule.
///
/// Rates are expressed as expected events per schedule over a stream of
/// `stream_len` bytes; fractions are honoured probabilistically, so light
/// profiles still occasionally produce each kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Expected bit flips.
    pub bit_flips: f64,
    /// Expected dropped ranges.
    pub drops: f64,
    /// Expected mid-stream disconnects.
    pub disconnects: f64,
    /// Expected latency spikes.
    pub stalls: f64,
    /// Expected duplicated chunks.
    pub duplicates: f64,
    /// Expected reordered chunk pairs.
    pub reorders: f64,
    /// Expected bandwidth-collapse windows.
    pub collapses: f64,
    /// Maximum stall per event, in ms (clamped to [`MAX_EVENT_SLEEP_MS`]).
    pub max_stall_ms: u16,
}

impl FaultProfile {
    /// A quiet link: no faults at all.
    pub fn clean() -> FaultProfile {
        FaultProfile {
            bit_flips: 0.0,
            drops: 0.0,
            disconnects: 0.0,
            stalls: 0.0,
            duplicates: 0.0,
            reorders: 0.0,
            collapses: 0.0,
            max_stall_ms: 0,
        }
    }

    /// A lossy mobile uplink: a few corruption events, occasional stalls and
    /// duplicate/reordered chunks, roughly one disconnect, and a bandwidth
    /// collapse window. The default chaos-harness profile.
    pub fn lossy_4g() -> FaultProfile {
        FaultProfile {
            bit_flips: 3.0,
            drops: 1.5,
            disconnects: 1.0,
            stalls: 1.5,
            duplicates: 1.0,
            reorders: 1.0,
            collapses: 0.7,
            max_stall_ms: 10,
        }
    }

    /// A hostile link: heavy corruption, repeated disconnects. Used by the
    /// high-seed chaos sweeps to exercise retry exhaustion paths.
    pub fn hostile() -> FaultProfile {
        FaultProfile {
            bit_flips: 10.0,
            drops: 5.0,
            disconnects: 3.0,
            stalls: 3.0,
            duplicates: 3.0,
            reorders: 2.0,
            collapses: 1.5,
            max_stall_ms: 10,
        }
    }
}

/// SplitMix64 — tiny deterministic generator so `dbgc-net` needs no RNG
/// dependency. Distinct from the workspace `rand` shim on purpose: schedules
/// must replay from their seed alone, independent of shim evolution.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` (n > 0).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }
}

/// A finite, replayable fault schedule: events sorted by stream offset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty (clean-link) schedule.
    pub fn empty() -> FaultSchedule {
        FaultSchedule { events: Vec::new() }
    }

    /// Build a schedule from explicit events (sorted internally).
    pub fn from_events(mut events: Vec<FaultEvent>) -> FaultSchedule {
        events.truncate(MAX_EVENTS);
        events.sort_by_key(|e| e.offset());
        FaultSchedule { events }
    }

    /// The events, sorted by offset.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Derive a schedule deterministically from `seed`, spreading the
    /// profile's expected event counts uniformly over a stream of
    /// `stream_len` bytes.
    pub fn generate(seed: u64, profile: &FaultProfile, stream_len: u64) -> FaultSchedule {
        let mut rng = SplitMix64(seed ^ 0xFA17_0000_0000_D00D);
        let len = stream_len.max(1);
        let mut events = Vec::new();
        let count = |rng: &mut SplitMix64, rate: f64| -> u64 {
            let whole = rate.max(0.0).floor();
            let fract = rate.max(0.0) - whole;
            let unit = (rng.next() >> 11) as f64 / (1u64 << 53) as f64;
            whole as u64 + u64::from(unit < fract)
        };
        for _ in 0..count(&mut rng, profile.bit_flips) {
            events.push(FaultEvent::FlipBit { at: rng.below(len), bit: (rng.next() & 7) as u8 });
        }
        for _ in 0..count(&mut rng, profile.drops) {
            events.push(FaultEvent::Drop { at: rng.below(len), len: 1 + rng.below(64) as u32 });
        }
        for _ in 0..count(&mut rng, profile.disconnects) {
            events.push(FaultEvent::Disconnect { at: rng.below(len) });
        }
        let max_stall = profile.max_stall_ms.max(1) as u64;
        for _ in 0..count(&mut rng, profile.stalls) {
            events.push(FaultEvent::Stall {
                at: rng.below(len),
                ms: (1 + rng.below(max_stall)) as u16,
            });
        }
        for _ in 0..count(&mut rng, profile.duplicates) {
            events
                .push(FaultEvent::Duplicate { at: rng.below(len), len: 1 + rng.below(96) as u32 });
        }
        for _ in 0..count(&mut rng, profile.reorders) {
            events.push(FaultEvent::Reorder { at: rng.below(len), len: 1 + rng.below(48) as u32 });
        }
        for _ in 0..count(&mut rng, profile.collapses) {
            events.push(FaultEvent::Collapse {
                at: rng.below(len),
                bytes: 256 + rng.below(4096) as u32,
                kbps: 1000, // the paper's 4G → ~1 Mbps collapse
            });
        }
        FaultSchedule::from_events(events)
    }

    /// Serialize for corpus storage and ddmin minimization: 13 bytes per
    /// event (`tag | u64 at | u32 arg`), little-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.events.len() * 13);
        for e in &self.events {
            let (tag, at, arg): (u8, u64, u32) = match *e {
                FaultEvent::FlipBit { at, bit } => (1, at, bit as u32),
                FaultEvent::Drop { at, len } => (2, at, len),
                FaultEvent::Disconnect { at } => (3, at, 0),
                FaultEvent::Stall { at, ms } => (4, at, ms as u32),
                FaultEvent::Duplicate { at, len } => (5, at, len),
                FaultEvent::Reorder { at, len } => (6, at, len),
                FaultEvent::Collapse { at, bytes, kbps } => {
                    // kbps stored in 8-kbps units so the byte spans 8..2040;
                    // the generator's 1000 kbps (4G → ~1 Mbps) packs exactly.
                    (7, at, (bytes & 0xFF_FFFF) | ((kbps / 8).clamp(1, 255) << 24))
                }
            };
            out.push(tag);
            out.extend_from_slice(&at.to_le_bytes());
            out.extend_from_slice(&arg.to_le_bytes());
        }
        out
    }

    /// Total decoder for schedule bytes: never panics, skips malformed
    /// records, clamps hostile values. Any byte string is a valid (possibly
    /// empty) schedule, which makes schedules first-class fuzz inputs.
    pub fn from_bytes(bytes: &[u8]) -> FaultSchedule {
        let mut events = Vec::new();
        for rec in bytes.chunks_exact(13) {
            if events.len() >= MAX_EVENTS {
                break;
            }
            let at = u64::from_le_bytes(rec[1..9].try_into().expect("8-byte slice"));
            let arg = u32::from_le_bytes(rec[9..13].try_into().expect("4-byte slice"));
            let event = match rec[0] {
                1 => FaultEvent::FlipBit { at, bit: (arg & 7) as u8 },
                2 => FaultEvent::Drop { at, len: (arg % (1 << 20)).max(1) },
                3 => FaultEvent::Disconnect { at },
                4 => FaultEvent::Stall { at, ms: (arg as u64).clamp(1, MAX_EVENT_SLEEP_MS) as u16 },
                5 => FaultEvent::Duplicate { at, len: (arg % (1 << 16)).max(1) },
                6 => FaultEvent::Reorder { at, len: (arg % (1 << 16)).max(1) },
                7 => FaultEvent::Collapse {
                    at,
                    bytes: (arg & 0xFF_FFFF).max(1),
                    kbps: (arg >> 24).clamp(1, 255) * 8,
                },
                _ => continue, // unknown tag: drop the record
            };
            events.push(event);
        }
        FaultSchedule::from_events(events)
    }

    /// Wrap the schedule in shared link state, ready to hand to one or more
    /// (sequential) [`FaultyLink`]s.
    pub fn into_state(self) -> Arc<Mutex<FaultState>> {
        Arc::new(Mutex::new(FaultState::new(self)))
    }
}

/// Mutable cursor over a schedule, shared by every [`FaultyLink`] a session
/// creates across reconnects.
#[derive(Debug)]
pub struct FaultState {
    events: Vec<FaultEvent>,
    next_event: usize,
    /// Sender's cumulative intended offset (advances even through drops).
    offset: u64,
    /// The current link is dead (a [`FaultEvent::Disconnect`] fired).
    dead: bool,
    /// Remaining sleep budget for stalls/collapses.
    sleep_budget: Duration,
    /// Open collapse window: (end_offset, kbps).
    collapse: Option<(u64, u32)>,
    /// Tail of recently delivered bytes, donor material for duplicates.
    history: Vec<u8>,
    /// Counters for reports: events applied, by kind order of declaration.
    applied: [u64; 7],
}

const HISTORY_CAP: usize = 256;

impl FaultState {
    fn new(schedule: FaultSchedule) -> FaultState {
        FaultState {
            events: schedule.events,
            next_event: 0,
            offset: 0,
            dead: false,
            sleep_budget: MAX_TOTAL_SLEEP,
            collapse: None,
            history: Vec::new(),
            applied: [0; 7],
        }
    }

    /// A new connection was established: the link is live again. The
    /// schedule cursor does not rewind.
    pub fn revive(&mut self) {
        self.dead = false;
    }

    /// Total events applied so far.
    pub fn events_applied(&self) -> u64 {
        self.applied.iter().sum()
    }

    /// Events applied per kind, in [`FaultEvent`] declaration order
    /// (bit-flip, drop, disconnect, stall, duplicate, reorder, collapse).
    pub fn applied_by_kind(&self) -> [u64; 7] {
        self.applied
    }

    /// Stream offset reached so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    fn sleep(&mut self, wanted: Duration) {
        let d = wanted.min(self.sleep_budget).min(Duration::from_millis(MAX_EVENT_SLEEP_MS));
        self.sleep_budget = self.sleep_budget.saturating_sub(d);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }

    /// Transform an outgoing chunk. Returns the bytes to actually deliver,
    /// or an error if a disconnect fired (bytes before the cut are returned
    /// for delivery via `deliver_then_fail`).
    fn process(&mut self, data: &[u8]) -> (Vec<u8>, bool) {
        if self.dead {
            return (Vec::new(), true);
        }
        let start = self.offset;
        let end = start + data.len() as u64;
        let mut out: Vec<u8> = data.to_vec();
        // Byte index into `out` corresponding to stream offset `start + i`
        // shifts as drops/duplicates splice; track a simple delta per event
        // by applying events in offset order against the original indices
        // first, then splicing.
        let mut cut_at: Option<usize> = None;
        let mut dup_after: Vec<u8> = Vec::new();
        while self.next_event < self.events.len() {
            let ev = self.events[self.next_event];
            if ev.offset() >= end {
                break;
            }
            self.next_event += 1;
            if ev.offset() < start {
                // Missed while the link was down or inside a previous chunk;
                // apply position-less effects, drop positional ones.
                match ev {
                    FaultEvent::Disconnect { .. } => {
                        cut_at = Some(0);
                        self.applied[2] += 1;
                    }
                    FaultEvent::Stall { ms, .. } => {
                        self.applied[3] += 1;
                        self.sleep(Duration::from_millis(ms as u64));
                    }
                    _ => {}
                }
                continue;
            }
            let rel = (ev.offset() - start) as usize;
            match ev {
                FaultEvent::FlipBit { bit, .. } => {
                    if let Some(b) = out.get_mut(rel) {
                        *b ^= 1 << (bit & 7);
                        self.applied[0] += 1;
                    }
                }
                FaultEvent::Drop { len, .. } => {
                    // Later events' `rel` indices shift after the splice;
                    // that imprecision is fine — the schedule stays
                    // deterministic, which is what replayability needs.
                    let start = rel.min(out.len());
                    let hole = start..(rel + len as usize).min(out.len());
                    if !hole.is_empty() {
                        out.drain(hole);
                        self.applied[1] += 1;
                    }
                }
                FaultEvent::Disconnect { .. } => {
                    cut_at = Some(rel.min(out.len()));
                    self.applied[2] += 1;
                    break;
                }
                FaultEvent::Stall { ms, .. } => {
                    self.applied[3] += 1;
                    self.sleep(Duration::from_millis(ms as u64));
                }
                FaultEvent::Duplicate { len, .. } => {
                    let take = (len as usize).min(HISTORY_CAP);
                    let mut chunk: Vec<u8> = Vec::new();
                    let avail = out[..rel.min(out.len())].to_vec();
                    let from_hist = take.saturating_sub(avail.len());
                    if from_hist > 0 && !self.history.is_empty() {
                        let h = self.history.len().saturating_sub(from_hist);
                        chunk.extend_from_slice(&self.history[h..]);
                    }
                    let tail = avail.len().saturating_sub(take);
                    chunk.extend_from_slice(&avail[tail..]);
                    if !chunk.is_empty() {
                        dup_after.extend_from_slice(&chunk);
                        self.applied[4] += 1;
                    }
                }
                FaultEvent::Reorder { len, .. } => {
                    let l = len as usize;
                    if rel + 2 * l <= out.len() {
                        let (a, b) = out.split_at_mut(rel + l);
                        a[rel..].swap_with_slice(&mut b[..l]);
                        self.applied[5] += 1;
                    }
                }
                FaultEvent::Collapse { bytes, kbps, .. } => {
                    self.collapse = Some((ev.offset() + bytes as u64, kbps.max(1)));
                    self.applied[6] += 1;
                }
            }
        }
        // Bandwidth collapse pacing over whatever window overlaps the chunk.
        if let Some((until, kbps)) = self.collapse {
            let covered = end.min(until).saturating_sub(start);
            if covered > 0 {
                let secs = covered as f64 * 8.0 / (kbps as f64 * 1000.0);
                self.sleep(Duration::from_secs_f64(secs));
            }
            if end >= until {
                self.collapse = None;
            }
        }
        self.offset = end;
        if let Some(cut) = cut_at {
            self.dead = true;
            out.truncate(cut);
            self.push_history(&out);
            return (out, true);
        }
        out.extend_from_slice(&dup_after);
        self.push_history(&out);
        (out, false)
    }

    fn push_history(&mut self, delivered: &[u8]) {
        let take = delivered.len().min(HISTORY_CAP);
        self.history.extend_from_slice(&delivered[delivered.len() - take..]);
        if self.history.len() > HISTORY_CAP {
            let cut = self.history.len() - HISTORY_CAP;
            self.history.drain(..cut);
        }
    }
}

/// A `Write` wrapper that injects the shared schedule's faults into the
/// byte stream. Create one per connection over the session's shared
/// [`FaultState`]; see the module docs.
#[derive(Debug)]
pub struct FaultyLink<W> {
    inner: W,
    state: Arc<Mutex<FaultState>>,
}

impl<W: Write> FaultyLink<W> {
    /// Wrap `inner`, applying faults from `state`. Revives a dead link (the
    /// caller is modelling a fresh connection).
    pub fn new(inner: W, state: Arc<Mutex<FaultState>>) -> FaultyLink<W> {
        state.lock().expect("fault state").revive();
        FaultyLink { inner, state }
    }

    /// The shared schedule state.
    pub fn state(&self) -> &Arc<Mutex<FaultState>> {
        &self.state
    }
}

impl<W: Write> Write for FaultyLink<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let (deliver, died) = {
            let mut st = self.state.lock().expect("fault state");
            if st.dead {
                return Err(io::Error::new(io::ErrorKind::ConnectionReset, "link dead"));
            }
            st.process(data)
        };
        if !deliver.is_empty() {
            self.inner.write_all(&deliver)?;
        }
        if died {
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "scheduled disconnect"));
        }
        // From the sender's perspective the whole chunk was written; the
        // schedule decided what actually came out the far end.
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.state.lock().expect("fault state").dead {
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "link dead"));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(schedule: FaultSchedule, chunks: &[&[u8]]) -> (Vec<u8>, Vec<bool>) {
        let state = schedule.into_state();
        let mut out = Vec::new();
        let mut errs = Vec::new();
        {
            let mut link = FaultyLink::new(&mut out, Arc::clone(&state));
            for c in chunks {
                errs.push(link.write(c).is_err());
            }
        }
        (out, errs)
    }

    #[test]
    fn clean_schedule_is_transparent() {
        let (out, errs) = deliver(FaultSchedule::empty(), &[b"hello ", b"fault ", b"free world"]);
        assert_eq!(out, b"hello fault free world");
        assert!(errs.iter().all(|e| !e));
    }

    #[test]
    fn bit_flip_lands_at_offset() {
        let sched = FaultSchedule::from_events(vec![FaultEvent::FlipBit { at: 3, bit: 0 }]);
        let (out, _) = deliver(sched, &[b"AAAA", b"BBBB"]);
        assert_eq!(out, b"AAA\x40BBBB".to_vec());
    }

    #[test]
    fn bit_flip_across_chunk_boundary() {
        let sched = FaultSchedule::from_events(vec![FaultEvent::FlipBit { at: 5, bit: 1 }]);
        let (out, _) = deliver(sched, &[b"AAAA", b"BBBB"]);
        assert_eq!(out, b"AAAAB\x40BB".to_vec());
    }

    #[test]
    fn drop_cuts_bytes_but_offset_advances() {
        let sched = FaultSchedule::from_events(vec![
            FaultEvent::Drop { at: 2, len: 4 },
            FaultEvent::FlipBit { at: 9, bit: 0 }, // offset 9 in *intended* stream
        ]);
        let (out, _) = deliver(sched, &[b"0123456789"]);
        // Bytes 2..6 dropped; flip lands on intended offset 9... after the
        // drop splice indices shift, so the flip may land elsewhere or miss;
        // determinism is what matters.
        let (out2, _) = deliver(
            FaultSchedule::from_events(vec![
                FaultEvent::Drop { at: 2, len: 4 },
                FaultEvent::FlipBit { at: 9, bit: 0 },
            ]),
            &[b"0123456789"],
        );
        assert_eq!(out, out2, "replay is deterministic");
        assert_eq!(out.len(), 6);
        assert!(out.starts_with(b"01"));
    }

    #[test]
    fn disconnect_kills_link_until_revived() {
        let sched = FaultSchedule::from_events(vec![FaultEvent::Disconnect { at: 6 }]);
        let state = sched.into_state();
        let mut sink = Vec::new();
        {
            let mut link = FaultyLink::new(&mut sink, Arc::clone(&state));
            assert!(link.write(b"0123").is_ok());
            let err = link.write(b"4567").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
            assert!(link.write(b"89").is_err(), "dead until revived");
        }
        assert_eq!(sink, b"012345", "bytes before the cut were delivered");
        // A fresh link over the same state models a reconnect.
        let mut sink2 = Vec::new();
        let mut link2 = FaultyLink::new(&mut sink2, state);
        assert!(link2.write(b"resent").is_ok());
        assert_eq!(sink2, b"resent");
    }

    #[test]
    fn duplicate_replays_recent_bytes() {
        let sched = FaultSchedule::from_events(vec![FaultEvent::Duplicate { at: 4, len: 2 }]);
        let (out, _) = deliver(sched, &[b"abcdef"]);
        // The two bytes before offset 4 ("cd") are appended again.
        assert_eq!(out, b"abcdefcd".to_vec());
    }

    #[test]
    fn reorder_swaps_adjacent_windows() {
        let sched = FaultSchedule::from_events(vec![FaultEvent::Reorder { at: 1, len: 2 }]);
        let (out, _) = deliver(sched, &[b"abcdef"]);
        assert_eq!(out, b"adebcf".to_vec());
    }

    #[test]
    fn generate_is_deterministic_and_profile_scaled() {
        let p = FaultProfile::lossy_4g();
        let a = FaultSchedule::generate(9, &p, 10_000);
        let b = FaultSchedule::generate(9, &p, 10_000);
        assert_eq!(a, b);
        let c = FaultSchedule::generate(10, &p, 10_000);
        assert!(a != c, "different seeds diverge");
        assert!(FaultSchedule::generate(3, &FaultProfile::clean(), 10_000).events().is_empty());
        let hostile = FaultSchedule::generate(3, &FaultProfile::hostile(), 10_000);
        assert!(hostile.events().len() >= 10, "hostile profile is busy");
    }

    #[test]
    fn schedule_bytes_roundtrip() {
        let sched = FaultSchedule::generate(17, &FaultProfile::hostile(), 50_000);
        let back = FaultSchedule::from_bytes(&sched.to_bytes());
        assert_eq!(sched, back);
    }

    #[test]
    fn from_bytes_is_total_on_garbage() {
        // Any byte soup decodes without panicking, to a bounded schedule.
        let mut rng = SplitMix64(99);
        for len in [0usize, 1, 12, 13, 26, 1000, 13 * MAX_EVENTS + 5] {
            let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            let sched = FaultSchedule::from_bytes(&bytes);
            assert!(sched.events().len() <= MAX_EVENTS);
            for e in sched.events() {
                if let FaultEvent::Stall { ms, .. } = e {
                    assert!((*ms as u64) <= MAX_EVENT_SLEEP_MS);
                }
            }
        }
    }

    #[test]
    fn sleep_budget_bounds_hostile_stall_schedules() {
        // 4096 stalls at max duration must not actually sleep ~17 minutes.
        let events: Vec<FaultEvent> =
            (0..200).map(|i| FaultEvent::Stall { at: i, ms: 250 }).collect();
        let state = FaultSchedule::from_events(events).into_state();
        let mut sink = Vec::new();
        let start = std::time::Instant::now();
        let mut link = FaultyLink::new(&mut sink, state);
        link.write_all(&vec![0u8; 400]).unwrap();
        assert!(
            start.elapsed() <= MAX_TOTAL_SLEEP + Duration::from_secs(1),
            "sleep budget must clamp: {:?}",
            start.elapsed()
        );
    }
}
