//! Typed retry policies with exponential backoff and deterministic jitter.
//!
//! The resilient client (see [`crate::session`]) consults a [`Backoff`]
//! whenever a send fails or a connection dies: each attempt waits
//! `base · multiplier^n`, capped at `max_delay`, with a seeded jitter factor
//! so replayed chaos schedules reproduce the exact same timing decisions.

use std::time::Duration;

use crate::fault::SplitMix64;

/// When and how often to retry a failed transport operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts after the first failure before giving up (0 = fail fast).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Exponential growth factor between consecutive delays.
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a uniform factor
    /// in `[1 - jitter, 1 + jitter]`, decorrelating a fleet of clients that
    /// all lost the same uplink.
    pub jitter: f64,
}

impl RetryPolicy {
    /// Production-flavoured defaults for a mobile uplink: 8 retries,
    /// 50 ms → 5 s exponential, 30% jitter.
    pub fn mobile_uplink() -> RetryPolicy {
        RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(5),
            multiplier: 2.0,
            jitter: 0.3,
        }
    }

    /// Millisecond-scale delays for tests and chaos sweeps: plenty of
    /// retries, near-zero wall-clock cost.
    pub fn fast_test() -> RetryPolicy {
        RetryPolicy {
            max_retries: 12,
            base_delay: Duration::from_micros(200),
            max_delay: Duration::from_millis(5),
            multiplier: 2.0,
            jitter: 0.25,
        }
    }

    /// Never retry: surface the first failure (wire-v2 behaviour).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            multiplier: 1.0,
            jitter: 0.0,
        }
    }
}

/// Stateful backoff over a [`RetryPolicy`], with deterministic jitter.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
    rng: SplitMix64,
}

impl Backoff {
    /// A fresh backoff; `seed` drives the jitter sequence.
    pub fn new(policy: RetryPolicy, seed: u64) -> Backoff {
        Backoff { policy, attempt: 0, rng: SplitMix64(seed ^ 0xBAC0_FF00_0000_0001) }
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The policy driving this backoff.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Budget another attempt: `Some(delay)` to wait before retrying, `None`
    /// when the retry budget is exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.policy.max_retries {
            return None;
        }
        let exp = self.policy.multiplier.max(1.0).powi(self.attempt as i32);
        let raw = self.policy.base_delay.as_secs_f64() * exp;
        let capped = raw.min(self.policy.max_delay.as_secs_f64());
        let jitter = self.policy.jitter.clamp(0.0, 1.0);
        let unit = (self.rng.next() >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        let factor = 1.0 - jitter + 2.0 * jitter * unit;
        self.attempt += 1;
        Some(Duration::from_secs_f64((capped * factor).max(0.0)))
    }

    /// Sleep out the next delay; `false` when the budget is exhausted.
    pub fn wait(&mut self) -> bool {
        match self.next_delay() {
            Some(d) => {
                if !d.is_zero() {
                    std::thread::sleep(d);
                }
                true
            }
            None => false,
        }
    }

    /// Progress was made: reset the attempt counter so a long-lived session
    /// gets its full budget against each *new* failure burst.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let mut p = RetryPolicy::mobile_uplink();
        p.jitter = 0.0;
        let mut b = Backoff::new(p, 1);
        let d: Vec<Duration> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(d.len(), 8);
        assert_eq!(d[0], Duration::from_millis(50));
        assert_eq!(d[1], Duration::from_millis(100));
        assert_eq!(d[7], Duration::from_secs(5), "capped at max_delay");
        assert!(b.next_delay().is_none(), "budget exhausted");
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_bounded() {
        let p = RetryPolicy::mobile_uplink();
        let a: Vec<_> = {
            let mut b = Backoff::new(p, 7);
            std::iter::from_fn(|| b.next_delay()).collect()
        };
        let b: Vec<_> = {
            let mut b = Backoff::new(p, 7);
            std::iter::from_fn(|| b.next_delay()).collect()
        };
        assert_eq!(a, b, "same seed, same delays");
        let c: Vec<_> = {
            let mut b = Backoff::new(p, 8);
            std::iter::from_fn(|| b.next_delay()).collect()
        };
        assert_ne!(a, c, "different seed, different jitter");
        for (i, d) in a.iter().enumerate() {
            let nominal = 0.05 * 2f64.powi(i as i32);
            let nominal = nominal.min(5.0);
            let s = d.as_secs_f64();
            assert!(s >= nominal * 0.69 && s <= nominal * 1.31, "delay {i} = {s}s off-band");
        }
    }

    #[test]
    fn reset_restores_budget() {
        let mut b = Backoff::new(RetryPolicy::fast_test(), 3);
        while b.next_delay().is_some() {}
        assert!(b.next_delay().is_none());
        b.reset();
        assert!(b.next_delay().is_some());
    }

    #[test]
    fn none_policy_fails_fast() {
        let mut b = Backoff::new(RetryPolicy::none(), 1);
        assert!(b.next_delay().is_none());
    }
}
