//! Pipelined compression: keep up with the sensor by compressing frames on
//! worker threads while earlier frames are still in flight.
//!
//! A Velodyne HDL-64E produces 10 frames/s; single-threaded DBGC compression
//! takes ~0.1-0.15 s per frame at 2 cm, which leaves little headroom (and at
//! finer bounds falls behind). [`PipelinedCompressor`] fans frames out to a
//! small worker pool and yields results in submission order, so the paper's
//! "online compression" claim (§4.4) holds with a realistic number of cores.
//!
//! ## Two-level parallelism
//!
//! With the `parallel` feature (default), each worker's `compress` call also
//! parallelizes *within* the frame — spherical conversion, per-group ORG+SPA,
//! clustering grid build — over the process-wide `dbgc-parallel` pool. Frame
//! workers and intra-frame helpers share that single pool: a scoped run's
//! initiating thread participates in its own work and never blocks on busy
//! pool workers, so stacking the two levels cannot deadlock or oversubscribe
//! the machine with per-frame thread spawns. Frame-level workers hide
//! latency; intra-frame helpers cut per-frame latency; both draw from the
//! same fixed set of OS threads. Compression output is byte-identical
//! whatever the thread placement (see `Dbgc::compress`).
//!
//! ## Backpressure and graceful degradation
//!
//! The submission queue is *bounded* ([`PipelinedCompressor::with_queue_capacity`]);
//! what happens when a burst outruns the workers is the [`OverloadPolicy`]:
//!
//! * [`OverloadPolicy::Block`] (default) — `submit` blocks until a worker
//!   frees a slot. Latency grows, nothing is lost; exactly the old unbounded
//!   behaviour whenever the queue never fills.
//! * [`OverloadPolicy::DropOldest`] — the oldest *queued* (not yet started)
//!   frame is discarded to admit the new one; sensible for live streams
//!   where a fresher frame beats a stale one. Drops surface as
//!   [`PipelineEvent::Dropped`] and in [`PipelinedCompressor::overload_dropped`].
//! * [`OverloadPolicy::Degrade`] — under sustained pressure the compressor
//!   coarsens the error bound `q_xyz` one notch (×2) at a time, making each
//!   frame cheaper and smaller until the queue drains, then restores it.
//!   The level active at submission is recorded per frame in
//!   [`PipelineEvent::Frame`]. `submit` still blocks at the bound, but the
//!   degraded frames clear it quickly — bounded latency at reduced fidelity
//!   instead of unbounded latency at full fidelity.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use dbgc::{CompressedFrame, Dbgc, DbgcError};
use dbgc_geom::PointCloud;

/// Optional metrics sink (always `None` with the `metrics` feature off).
#[cfg(feature = "metrics")]
type MetricsSink = Option<dbgc_metrics::Collector>;
#[cfg(not(feature = "metrics"))]
type MetricsSink = Option<std::convert::Infallible>;

/// What `submit` does when the bounded queue is full; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Block the submitter until a slot frees (lossless, unbounded latency).
    #[default]
    Block,
    /// Discard the oldest still-queued frame to admit the new one.
    DropOldest,
    /// Coarsen `q_xyz` one notch (×2) under sustained pressure; restore on
    /// recovery.
    Degrade,
}

/// Consecutive pressured (resp. relieved) submissions before the degrade
/// level moves. Hysteresis: a single burst or a single idle gap does not
/// flap the quantization.
const DEGRADE_SUSTAIN: u32 = 3;
/// Maximum degrade notches: `q_xyz` is never coarsened beyond ×2⁴.
const MAX_DEGRADE_LEVEL: u8 = 4;

/// One in-order pipeline outcome (the detailed API; [`PipelinedCompressor::next_ordered`]
/// is the compatible frames-only view).
// Events are yielded one at a time and immediately consumed, never stored in
// bulk, so the Frame/Dropped size gap costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum PipelineEvent {
    /// A frame finished (or failed) compression.
    Frame {
        /// Submission sequence number.
        sequence: u64,
        /// Degrade level active when the frame was admitted (0 = configured
        /// fidelity; level `n` means `q_xyz × 2ⁿ`).
        degrade_level: u8,
        /// The compression outcome.
        result: Result<CompressedFrame, DbgcError>,
    },
    /// A frame was discarded unstarted by [`OverloadPolicy::DropOldest`].
    Dropped {
        /// Submission sequence number.
        sequence: u64,
    },
}

// One item in flight per worker; boxing the result would add a hot-path
// allocation to save bytes that are never held in aggregate.
#[allow(clippy::large_enum_variant)]
enum WorkItem {
    Done { level: u8, result: Result<CompressedFrame, DbgcError> },
    Dropped,
}

struct QueueState {
    /// Frames are queued as `Arc` so submission never deep-copies point
    /// buffers: the submitter keeps (or drops) its handle and workers borrow
    /// the same allocation. A multi-megabyte cloud costs one refcount bump to
    /// hand off instead of a copy on the producer thread — which is exactly
    /// the serial section Amdahl charges against every worker added.
    jobs: std::collections::VecDeque<(u64, Arc<PointCloud>, u8)>,
    closed: bool,
    high_water: u64,
}

struct SharedQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// A frame-ordered, multi-threaded DBGC compressor with bounded queues.
pub struct PipelinedCompressor {
    queue: Arc<SharedQueue>,
    results: Receiver<(u64, WorkItem)>,
    /// Kept so the submitter can report drops through the same channel.
    result_tx: Sender<(u64, WorkItem)>,
    workers: Vec<JoinHandle<()>>,
    capacity: usize,
    policy: OverloadPolicy,
    next_submit: u64,
    next_yield: u64,
    /// Out-of-order results parked until their turn.
    parked: HashMap<u64, WorkItem>,
    /// Degrade controller.
    degrade_level: u8,
    pressure: u32,
    relief: u32,
    degrade_transitions: u64,
    overload_dropped: u64,
    #[cfg_attr(not(feature = "metrics"), allow(dead_code))]
    metrics: MetricsSink,
}

impl PipelinedCompressor {
    /// Spawn `workers` threads, each owning a clone of `compressor`.
    pub fn new(compressor: Dbgc, workers: usize) -> PipelinedCompressor {
        Self::new_impl(compressor, workers, None)
    }

    /// [`PipelinedCompressor::new`], recording observability data into
    /// `collector`: `net.frames_submitted` / `net.frames_yielded` counters, a
    /// `net.queue_depth` histogram sampled at each submission, the
    /// `net.queue_depth_high_water` gauge, `net.degrade_transitions` /
    /// `net.frames_dropped_overload` counters, and each worker's `compress`
    /// span tree (workers share the collector, so spans from concurrent
    /// frames interleave; span parentage keeps them separable).
    #[cfg(feature = "metrics")]
    pub fn with_metrics(
        compressor: Dbgc,
        workers: usize,
        collector: &dbgc_metrics::Collector,
    ) -> PipelinedCompressor {
        Self::new_impl(compressor, workers, Some(collector.clone()))
    }

    fn new_impl(compressor: Dbgc, workers: usize, metrics: MetricsSink) -> PipelinedCompressor {
        assert!(workers >= 1, "need at least one worker");
        let queue = Arc::new(SharedQueue {
            state: Mutex::new(QueueState {
                jobs: std::collections::VecDeque::new(),
                closed: false,
                high_water: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        let (result_tx, results) = channel();
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let tx = result_tx.clone();
            let dbgc = compressor.clone();
            #[cfg(feature = "metrics")]
            let worker_metrics = metrics.clone();
            handles.push(std::thread::spawn(move || {
                // Degraded variants built lazily: level n doubles q_xyz n
                // times over the configured bound.
                let mut variants: HashMap<u8, Dbgc> = HashMap::new();
                loop {
                    let job = {
                        let mut state = queue.state.lock().expect("queue lock");
                        loop {
                            if let Some(job) = state.jobs.pop_front() {
                                queue.not_full.notify_one();
                                break Some(job);
                            }
                            if state.closed {
                                break None;
                            }
                            state = queue.not_empty.wait(state).expect("queue lock");
                        }
                    };
                    let Some((seq, cloud, level)) = job else { return };
                    let active = variants.entry(level).or_insert_with(|| {
                        let mut config = dbgc.config.clone();
                        config.q_xyz *= f64::from(1u32 << u32::from(level));
                        Dbgc::new(config)
                    });
                    let result = {
                        #[cfg(feature = "metrics")]
                        match &worker_metrics {
                            Some(c) => active.compress_with_metrics(&cloud, c),
                            None => active.compress(&cloud),
                        }
                        #[cfg(not(feature = "metrics"))]
                        active.compress(&cloud)
                    };
                    if tx.send((seq, WorkItem::Done { level, result })).is_err() {
                        return;
                    }
                }
            }));
        }
        PipelinedCompressor {
            queue,
            results,
            result_tx,
            workers: handles,
            capacity: 64,
            policy: OverloadPolicy::Block,
            next_submit: 0,
            next_yield: 0,
            parked: HashMap::new(),
            degrade_level: 0,
            pressure: 0,
            relief: 0,
            degrade_transitions: 0,
            overload_dropped: 0,
            metrics,
        }
    }

    /// Bound the submission queue at `capacity` frames (default 64).
    pub fn with_queue_capacity(mut self, capacity: usize) -> PipelinedCompressor {
        assert!(capacity >= 1, "queue capacity must be positive");
        self.capacity = capacity;
        self
    }

    /// Choose what `submit` does at the bound (default [`OverloadPolicy::Block`]).
    pub fn with_overload_policy(mut self, policy: OverloadPolicy) -> PipelinedCompressor {
        self.policy = policy;
        self
    }

    fn incr(&self, _name: &str, _n: u64) {
        #[cfg(feature = "metrics")]
        if let Some(c) = &self.metrics {
            c.incr(_name, _n);
        }
    }

    /// Advance the degrade hysteresis given the queue depth seen at this
    /// submission. High watermark: ¾ capacity; low watermark: ¼ capacity.
    fn update_degrade(&mut self, depth: usize) {
        if self.policy != OverloadPolicy::Degrade {
            return;
        }
        let high = (self.capacity * 3 / 4).max(1);
        let low = self.capacity / 4;
        if depth >= high {
            self.pressure += 1;
            self.relief = 0;
            if self.pressure >= DEGRADE_SUSTAIN && self.degrade_level < MAX_DEGRADE_LEVEL {
                self.degrade_level += 1;
                self.pressure = 0;
                self.degrade_transitions += 1;
                self.incr("net.degrade_transitions", 1);
                #[cfg(feature = "metrics")]
                if let Some(c) = &self.metrics {
                    c.set_gauge("net.degrade_level", f64::from(self.degrade_level));
                }
            }
        } else if depth <= low {
            self.relief += 1;
            self.pressure = 0;
            if self.relief >= DEGRADE_SUSTAIN && self.degrade_level > 0 {
                self.degrade_level -= 1;
                self.relief = 0;
                self.degrade_transitions += 1;
                self.incr("net.degrade_transitions", 1);
                #[cfg(feature = "metrics")]
                if let Some(c) = &self.metrics {
                    c.set_gauge("net.degrade_level", f64::from(self.degrade_level));
                }
            }
        } else {
            self.pressure = 0;
            self.relief = 0;
        }
    }

    /// Queue a frame for compression; returns its sequence number.
    ///
    /// At the queue bound the [`OverloadPolicy`] decides whether this blocks,
    /// drops the oldest queued frame, or (Degrade) blocks while pressure
    /// coarsens subsequent frames.
    pub fn submit(&mut self, cloud: PointCloud) -> u64 {
        self.submit_shared(Arc::new(cloud))
    }

    /// [`submit`](PipelinedCompressor::submit) without the handoff copy: the
    /// caller keeps its `Arc` handle (e.g. to replay or archive the frame)
    /// and the pipeline shares the same point buffer. Submitting an
    /// already-shared cloud is the fast path for sensor loops that fan one
    /// capture out to several consumers.
    pub fn submit_shared(&mut self, cloud: Arc<PointCloud>) -> u64 {
        let seq = self.next_submit;
        self.next_submit += 1;
        let depth;
        {
            let mut state = self.queue.state.lock().expect("queue lock");
            assert!(!state.closed, "submit after shutdown");
            if self.policy == OverloadPolicy::DropOldest {
                while state.jobs.len() >= self.capacity {
                    let (dropped_seq, _, _) =
                        state.jobs.pop_front().expect("non-empty at capacity");
                    self.overload_dropped += 1;
                    self.result_tx
                        .send((dropped_seq, WorkItem::Dropped))
                        .expect("results receiver alive");
                }
            } else {
                while state.jobs.len() >= self.capacity {
                    state = self.queue.not_full.wait(state).expect("queue lock");
                }
            }
            depth = state.jobs.len() + 1;
            state.jobs.push_back((seq, cloud, self.degrade_level));
            state.high_water = state.high_water.max(depth as u64);
            #[cfg(feature = "metrics")]
            if let Some(c) = &self.metrics {
                c.set_gauge("net.queue_depth_high_water", state.high_water as f64);
            }
        }
        self.queue.not_empty.notify_one();
        self.update_degrade(depth);
        #[cfg(feature = "metrics")]
        if let Some(c) = &self.metrics {
            c.incr("net.frames_submitted", 1);
            c.record("net.queue_depth", self.in_flight());
        }
        seq
    }

    /// Number of frames submitted but not yet yielded.
    pub fn in_flight(&self) -> u64 {
        self.next_submit - self.next_yield
    }

    /// The degrade notch new submissions are admitted at (0 = full fidelity).
    pub fn degrade_level(&self) -> u8 {
        self.degrade_level
    }

    /// Level transitions (up or down) the degrade controller has made.
    pub fn degrade_transitions(&self) -> u64 {
        self.degrade_transitions
    }

    /// Frames discarded unstarted by [`OverloadPolicy::DropOldest`].
    pub fn overload_dropped(&self) -> u64 {
        self.overload_dropped
    }

    /// Deepest the submission queue has been.
    pub fn queue_high_water(&self) -> u64 {
        self.queue.state.lock().expect("queue lock").high_water
    }

    /// Block until the next outcome *in submission order* is ready; `None`
    /// when every submitted frame has been yielded.
    pub fn next_event(&mut self) -> Option<PipelineEvent> {
        if self.next_yield == self.next_submit {
            return None;
        }
        loop {
            if let Some(item) = self.parked.remove(&self.next_yield) {
                let sequence = self.next_yield;
                self.next_yield += 1;
                return Some(match item {
                    WorkItem::Done { level, result } => {
                        self.incr("net.frames_yielded", 1);
                        PipelineEvent::Frame { sequence, degrade_level: level, result }
                    }
                    WorkItem::Dropped => {
                        self.incr("net.frames_dropped_overload", 1);
                        PipelineEvent::Dropped { sequence }
                    }
                });
            }
            let (seq, item) = self.results.recv().expect("workers alive");
            self.parked.insert(seq, item);
        }
    }

    /// Block until the next *frame* in submission order is ready, skipping
    /// overload drops. Returns `None` when all submitted frames have been
    /// yielded.
    pub fn next_ordered(&mut self) -> Option<Result<CompressedFrame, DbgcError>> {
        loop {
            match self.next_event()? {
                PipelineEvent::Frame { result, .. } => return Some(result),
                PipelineEvent::Dropped { .. } => continue,
            }
        }
    }

    /// Drop the submission side and join all workers; remaining results are
    /// discarded. Called automatically on drop.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.queue.state.lock().expect("queue lock");
            state.closed = true;
            state.jobs.clear();
        }
        self.queue.not_empty.notify_all();
        self.queue.not_full.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for PipelinedCompressor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinedCompressor")
            .field("workers", &self.workers.len())
            .field("capacity", &self.capacity)
            .field("policy", &self.policy)
            .field("in_flight", &self.in_flight())
            .field("degrade_level", &self.degrade_level)
            .finish()
    }
}

impl Drop for PipelinedCompressor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgc_geom::Point3;

    fn cloud(seed: u64, n: usize) -> PointCloud {
        (0..n)
            .map(|i| {
                let th = (i as f64 + seed as f64) / n as f64 * std::f64::consts::TAU;
                Point3::new(20.0 * th.cos(), 20.0 * th.sin(), -1.7 + seed as f64 * 0.01)
            })
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let mut pipe = PipelinedCompressor::new(Dbgc::with_error_bound(0.02), 4);
        let clouds: Vec<PointCloud> = (0..12).map(|s| cloud(s, 2000 + s as usize * 500)).collect();
        for c in &clouds {
            pipe.submit(c.clone());
        }
        for (i, c) in clouds.iter().enumerate() {
            let frame = pipe.next_ordered().expect("frame pending").expect("compresses");
            // Verify it is really frame i: decompress and compare counts.
            let (restored, _) = dbgc::decompress(&frame.bytes).unwrap();
            assert_eq!(restored.len(), c.len(), "frame {i} out of order");
        }
        assert!(pipe.next_ordered().is_none());
    }

    #[test]
    fn matches_single_threaded_output() {
        // Compression is deterministic, so the pipelined bytes must be
        // byte-identical to the direct path.
        let dbgc = Dbgc::with_error_bound(0.02);
        let c = cloud(3, 4000);
        let direct = dbgc.compress(&c).unwrap();
        let mut pipe = PipelinedCompressor::new(dbgc, 2);
        pipe.submit(c);
        let piped = pipe.next_ordered().unwrap().unwrap();
        assert_eq!(piped.bytes, direct.bytes);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn intra_frame_parallelism_matches_serial_bytes() {
        // Frame-level workers and intra-frame pool helpers run concurrently;
        // the bitstream must still be byte-identical to the fully serial
        // path (threads = 1).
        let mut serial_cfg = dbgc::DbgcConfig::with_error_bound(0.02);
        serial_cfg.threads = 1;
        let mut parallel_cfg = serial_cfg.clone();
        parallel_cfg.threads = 4;

        let clouds: Vec<PointCloud> = (0..6).map(|s| cloud(s, 3000)).collect();
        let direct: Vec<CompressedFrame> =
            clouds.iter().map(|c| Dbgc::new(serial_cfg.clone()).compress(c).unwrap()).collect();

        let mut pipe = PipelinedCompressor::new(Dbgc::new(parallel_cfg), 2);
        for c in &clouds {
            pipe.submit(c.clone());
        }
        for expected in &direct {
            let got = pipe.next_ordered().unwrap().unwrap();
            assert_eq!(got.bytes, expected.bytes);
            assert_eq!(got.mapping, expected.mapping);
        }
    }

    #[test]
    fn wide_profile_flows_through_the_pipeline() {
        // Degrade variants clone the full config, so the entropy profile must
        // survive the worker handoff: pipelined wide frames are byte-identical
        // to direct wide compression and carry stream version 3.
        let cfg = dbgc::DbgcConfig::with_error_bound(0.02)
            .with_entropy_profile(dbgc::EntropyProfile::Wide);
        let dbgc = Dbgc::new(cfg);
        let c = cloud(7, 3000);
        let direct = dbgc.compress(&c).unwrap();
        assert_eq!(direct.bytes[4], 3, "wide frames carry stream version 3");
        let mut pipe = PipelinedCompressor::new(dbgc, 2);
        pipe.submit(c);
        let piped = pipe.next_ordered().unwrap().unwrap();
        assert_eq!(piped.bytes, direct.bytes);
        let (restored, _) = dbgc::decompress(&piped.bytes).unwrap();
        assert_eq!(restored.len(), 3000);
    }

    #[test]
    fn submit_shared_avoids_the_handoff_copy() {
        let dbgc = Dbgc::with_error_bound(0.02);
        let c = Arc::new(cloud(5, 3000));
        let direct = dbgc.compress(&c).unwrap();
        let mut pipe = PipelinedCompressor::new(dbgc, 2);
        // The submitter keeps its handle; the pipeline shares the buffer.
        pipe.submit_shared(Arc::clone(&c));
        let piped = pipe.next_ordered().unwrap().unwrap();
        assert_eq!(piped.bytes, direct.bytes);
        assert_eq!(c.len(), 3000, "caller's handle still valid");
    }

    #[test]
    fn errors_are_delivered_in_order() {
        let mut pipe = PipelinedCompressor::new(Dbgc::with_error_bound(0.02), 2);
        pipe.submit(cloud(1, 1000));
        let mut bad = cloud(2, 10);
        bad.push(Point3::new(f64::NAN, 0.0, 0.0));
        pipe.submit(bad);
        assert!(pipe.next_ordered().unwrap().is_ok());
        assert!(matches!(pipe.next_ordered().unwrap(), Err(DbgcError::NonFinitePoint { .. })));
    }

    #[test]
    fn in_flight_tracking_and_drop() {
        let mut pipe = PipelinedCompressor::new(Dbgc::with_error_bound(0.05), 2);
        assert_eq!(pipe.in_flight(), 0);
        pipe.submit(cloud(1, 500));
        pipe.submit(cloud(2, 500));
        assert_eq!(pipe.in_flight(), 2);
        let _ = pipe.next_ordered();
        assert_eq!(pipe.in_flight(), 1);
        // Dropping with one frame still in flight must not hang.
        drop(pipe);
    }

    #[test]
    fn block_policy_bounds_the_queue_without_losing_frames() {
        let mut pipe = PipelinedCompressor::new(Dbgc::with_error_bound(0.05), 1)
            .with_queue_capacity(2)
            .with_overload_policy(OverloadPolicy::Block);
        // 8 frames through a 2-slot queue: submit blocks, nothing is lost.
        for s in 0..8 {
            pipe.submit(cloud(s, 400));
        }
        let mut yielded = 0;
        while let Some(r) = pipe.next_ordered() {
            r.unwrap();
            yielded += 1;
        }
        assert_eq!(yielded, 8);
        assert!(pipe.queue_high_water() <= 2, "bounded: {}", pipe.queue_high_water());
        assert_eq!(pipe.overload_dropped(), 0);
    }

    #[test]
    fn drop_oldest_sheds_queued_frames_and_reports_them() {
        let mut pipe = PipelinedCompressor::new(Dbgc::with_error_bound(0.05), 1)
            .with_queue_capacity(1)
            .with_overload_policy(OverloadPolicy::DropOldest);
        // Burst far ahead of one worker with a single queue slot: later
        // submissions evict earlier queued frames.
        for s in 0..10 {
            pipe.submit(cloud(s, 1500));
        }
        let mut frames = 0;
        let mut dropped = Vec::new();
        while let Some(event) = pipe.next_event() {
            match event {
                PipelineEvent::Frame { result, .. } => {
                    result.unwrap();
                    frames += 1;
                }
                PipelineEvent::Dropped { sequence } => dropped.push(sequence),
            }
        }
        assert_eq!(frames + dropped.len(), 10, "every submission accounted for");
        assert_eq!(dropped.len() as u64, pipe.overload_dropped());
        assert!(!dropped.is_empty(), "1-slot queue under a 10-frame burst must shed");
        // The most recent frame is never the one shed.
        assert!(!dropped.contains(&9));
    }

    #[test]
    fn degrade_coarsens_under_pressure_and_recovers() {
        let mut pipe = PipelinedCompressor::new(Dbgc::with_error_bound(0.02), 1)
            .with_queue_capacity(4)
            .with_overload_policy(OverloadPolicy::Degrade);
        // Saturate: one slow worker, rapid submissions. The controller must
        // step the level up after sustained pressure.
        let mut levels = Vec::new();
        for s in 0..16 {
            pipe.submit(cloud(s, 1200));
            levels.push(pipe.degrade_level());
        }
        assert!(*levels.last().unwrap() > 0, "sustained pressure coarsens: {levels:?}");
        assert!(pipe.degrade_transitions() > 0);
        // Drain; per-frame levels are recorded and degraded frames decode.
        let mut seen_levels = Vec::new();
        while let Some(event) = pipe.next_event() {
            match event {
                PipelineEvent::Frame { degrade_level, result, .. } => {
                    let frame = result.unwrap();
                    dbgc::decompress(&frame.bytes).unwrap();
                    seen_levels.push(degrade_level);
                }
                PipelineEvent::Dropped { .. } => panic!("Degrade never drops"),
            }
        }
        assert_eq!(seen_levels.len(), 16);
        assert!(seen_levels.iter().any(|&l| l > 0), "some frames shipped degraded");
        assert_eq!(seen_levels[0], 0, "first frame at full fidelity");
        // Recovery: with the queue idle, relief steps the level back down.
        let before = pipe.degrade_level();
        assert!(before > 0);
        for s in 0..40 {
            pipe.submit(cloud(s, 30));
            while pipe.next_ordered().is_some() {}
            if pipe.degrade_level() == 0 {
                break;
            }
        }
        assert_eq!(pipe.degrade_level(), 0, "level restored after pressure clears");
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn overload_counters_flow_through_metrics() {
        let collector = dbgc_metrics::Collector::new();
        let mut pipe =
            PipelinedCompressor::with_metrics(Dbgc::with_error_bound(0.05), 1, &collector)
                .with_queue_capacity(1)
                .with_overload_policy(OverloadPolicy::DropOldest);
        for s in 0..6 {
            pipe.submit(cloud(s, 1200));
        }
        while pipe.next_event().is_some() {}
        let snap = collector.snapshot();
        assert!(snap.counters["net.frames_dropped_overload"] > 0);
        assert!(snap.gauges["net.queue_depth_high_water"] >= 1.0);
    }
}
