//! Pipelined compression: keep up with the sensor by compressing frames on
//! worker threads while earlier frames are still in flight.
//!
//! A Velodyne HDL-64E produces 10 frames/s; single-threaded DBGC compression
//! takes ~0.1-0.15 s per frame at 2 cm, which leaves little headroom (and at
//! finer bounds falls behind). [`PipelinedCompressor`] fans frames out to a
//! small worker pool and yields results in submission order, so the paper's
//! "online compression" claim (§4.4) holds with a realistic number of cores.
//!
//! ## Two-level parallelism
//!
//! With the `parallel` feature (default), each worker's `compress` call also
//! parallelizes *within* the frame — spherical conversion, per-group ORG+SPA,
//! clustering grid build — over the process-wide `dbgc-parallel` pool. Frame
//! workers and intra-frame helpers share that single pool: a scoped run's
//! initiating thread participates in its own work and never blocks on busy
//! pool workers, so stacking the two levels cannot deadlock or oversubscribe
//! the machine with per-frame thread spawns. Frame-level workers hide
//! latency; intra-frame helpers cut per-frame latency; both draw from the
//! same fixed set of OS threads. Compression output is byte-identical
//! whatever the thread placement (see `Dbgc::compress`).

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use dbgc::{CompressedFrame, Dbgc, DbgcError};
use dbgc_geom::PointCloud;

/// Optional metrics sink (always `None` with the `metrics` feature off).
#[cfg(feature = "metrics")]
type MetricsSink = Option<dbgc_metrics::Collector>;
#[cfg(not(feature = "metrics"))]
type MetricsSink = Option<std::convert::Infallible>;

/// A frame-ordered, multi-threaded DBGC compressor.
#[derive(Debug)]
pub struct PipelinedCompressor {
    submit: Option<Sender<(u64, PointCloud)>>,
    results: Receiver<(u64, Result<CompressedFrame, DbgcError>)>,
    workers: Vec<JoinHandle<()>>,
    next_submit: u64,
    next_yield: u64,
    /// Out-of-order results parked until their turn.
    parked: HashMap<u64, Result<CompressedFrame, DbgcError>>,
    #[cfg_attr(not(feature = "metrics"), allow(dead_code))]
    metrics: MetricsSink,
}

impl PipelinedCompressor {
    /// Spawn `workers` threads, each owning a clone of `compressor`.
    pub fn new(compressor: Dbgc, workers: usize) -> PipelinedCompressor {
        Self::new_impl(compressor, workers, None)
    }

    /// [`PipelinedCompressor::new`], recording observability data into
    /// `collector`: `net.frames_submitted` / `net.frames_yielded` counters, a
    /// `net.queue_depth` histogram sampled at each submission, and each
    /// worker's `compress` span tree (workers share the collector, so spans
    /// from concurrent frames interleave; span parentage keeps them
    /// separable).
    #[cfg(feature = "metrics")]
    pub fn with_metrics(
        compressor: Dbgc,
        workers: usize,
        collector: &dbgc_metrics::Collector,
    ) -> PipelinedCompressor {
        Self::new_impl(compressor, workers, Some(collector.clone()))
    }

    fn new_impl(compressor: Dbgc, workers: usize, metrics: MetricsSink) -> PipelinedCompressor {
        assert!(workers >= 1, "need at least one worker");
        let (submit_tx, submit_rx) = channel::<(u64, PointCloud)>();
        let submit_rx = std::sync::Arc::new(std::sync::Mutex::new(submit_rx));
        let (result_tx, results) = channel();
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = std::sync::Arc::clone(&submit_rx);
            let tx = result_tx.clone();
            let dbgc = compressor.clone();
            #[cfg(feature = "metrics")]
            let worker_metrics = metrics.clone();
            handles.push(std::thread::spawn(move || loop {
                // Hold the lock only while receiving, not while compressing.
                let job = { rx.lock().expect("worker lock").recv() };
                let Ok((seq, cloud)) = job else { return };
                let result = {
                    #[cfg(feature = "metrics")]
                    match &worker_metrics {
                        Some(c) => dbgc.compress_with_metrics(&cloud, c),
                        None => dbgc.compress(&cloud),
                    }
                    #[cfg(not(feature = "metrics"))]
                    dbgc.compress(&cloud)
                };
                if tx.send((seq, result)).is_err() {
                    return;
                }
            }));
        }
        PipelinedCompressor {
            submit: Some(submit_tx),
            results,
            workers: handles,
            next_submit: 0,
            next_yield: 0,
            parked: HashMap::new(),
            metrics,
        }
    }

    /// Queue a frame for compression; returns its sequence number.
    pub fn submit(&mut self, cloud: PointCloud) -> u64 {
        let seq = self.next_submit;
        self.next_submit += 1;
        self.submit
            .as_ref()
            .expect("submit after finish")
            .send((seq, cloud))
            .expect("workers alive");
        #[cfg(feature = "metrics")]
        if let Some(c) = &self.metrics {
            c.incr("net.frames_submitted", 1);
            c.record("net.queue_depth", self.in_flight());
        }
        seq
    }

    /// Number of frames submitted but not yet yielded.
    pub fn in_flight(&self) -> u64 {
        self.next_submit - self.next_yield
    }

    /// Block until the next frame *in submission order* is ready.
    /// Returns `None` when all submitted frames have been yielded.
    pub fn next_ordered(&mut self) -> Option<Result<CompressedFrame, DbgcError>> {
        if self.next_yield == self.next_submit {
            return None;
        }
        loop {
            if let Some(result) = self.parked.remove(&self.next_yield) {
                self.next_yield += 1;
                #[cfg(feature = "metrics")]
                if let Some(c) = &self.metrics {
                    c.incr("net.frames_yielded", 1);
                }
                return Some(result);
            }
            let (seq, result) = self.results.recv().expect("workers alive");
            self.parked.insert(seq, result);
        }
    }

    /// Drop the submission side and join all workers; remaining results are
    /// discarded. Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.submit = None; // closes the channel; workers exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PipelinedCompressor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgc_geom::Point3;

    fn cloud(seed: u64, n: usize) -> PointCloud {
        (0..n)
            .map(|i| {
                let th = (i as f64 + seed as f64) / n as f64 * std::f64::consts::TAU;
                Point3::new(20.0 * th.cos(), 20.0 * th.sin(), -1.7 + seed as f64 * 0.01)
            })
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let mut pipe = PipelinedCompressor::new(Dbgc::with_error_bound(0.02), 4);
        let clouds: Vec<PointCloud> = (0..12).map(|s| cloud(s, 2000 + s as usize * 500)).collect();
        for c in &clouds {
            pipe.submit(c.clone());
        }
        for (i, c) in clouds.iter().enumerate() {
            let frame = pipe.next_ordered().expect("frame pending").expect("compresses");
            // Verify it is really frame i: decompress and compare counts.
            let (restored, _) = dbgc::decompress(&frame.bytes).unwrap();
            assert_eq!(restored.len(), c.len(), "frame {i} out of order");
        }
        assert!(pipe.next_ordered().is_none());
    }

    #[test]
    fn matches_single_threaded_output() {
        // Compression is deterministic, so the pipelined bytes must be
        // byte-identical to the direct path.
        let dbgc = Dbgc::with_error_bound(0.02);
        let c = cloud(3, 4000);
        let direct = dbgc.compress(&c).unwrap();
        let mut pipe = PipelinedCompressor::new(dbgc, 2);
        pipe.submit(c);
        let piped = pipe.next_ordered().unwrap().unwrap();
        assert_eq!(piped.bytes, direct.bytes);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn intra_frame_parallelism_matches_serial_bytes() {
        // Frame-level workers and intra-frame pool helpers run concurrently;
        // the bitstream must still be byte-identical to the fully serial
        // path (threads = 1).
        let mut serial_cfg = dbgc::DbgcConfig::with_error_bound(0.02);
        serial_cfg.threads = 1;
        let mut parallel_cfg = serial_cfg.clone();
        parallel_cfg.threads = 4;

        let clouds: Vec<PointCloud> = (0..6).map(|s| cloud(s, 3000)).collect();
        let direct: Vec<CompressedFrame> =
            clouds.iter().map(|c| Dbgc::new(serial_cfg.clone()).compress(c).unwrap()).collect();

        let mut pipe = PipelinedCompressor::new(Dbgc::new(parallel_cfg), 2);
        for c in &clouds {
            pipe.submit(c.clone());
        }
        for expected in &direct {
            let got = pipe.next_ordered().unwrap().unwrap();
            assert_eq!(got.bytes, expected.bytes);
            assert_eq!(got.mapping, expected.mapping);
        }
    }

    #[test]
    fn errors_are_delivered_in_order() {
        let mut pipe = PipelinedCompressor::new(Dbgc::with_error_bound(0.02), 2);
        pipe.submit(cloud(1, 1000));
        let mut bad = cloud(2, 10);
        bad.push(Point3::new(f64::NAN, 0.0, 0.0));
        pipe.submit(bad);
        assert!(pipe.next_ordered().unwrap().is_ok());
        assert!(matches!(pipe.next_ordered().unwrap(), Err(DbgcError::NonFinitePoint { .. })));
    }

    #[test]
    fn in_flight_tracking_and_drop() {
        let mut pipe = PipelinedCompressor::new(Dbgc::with_error_bound(0.05), 2);
        assert_eq!(pipe.in_flight(), 0);
        pipe.submit(cloud(1, 500));
        pipe.submit(cloud(2, 500));
        assert_eq!(pipe.in_flight(), 2);
        let _ = pipe.next_ordered();
        assert_eq!(pipe.in_flight(), 1);
        // Dropping with one frame still in flight must not hang.
        drop(pipe);
    }
}
