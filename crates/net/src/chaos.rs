//! The end-to-end chaos harness: a full client → faulty link → server run,
//! replayable from a seed, with an invariant checker.
//!
//! One [`run_chaos`] call wires a [`crate::session::ResilientClient`] through
//! a [`crate::fault::FaultyLink`] (whose schedule persists across the
//! client's reconnects) into a [`crate::server::SessionServer`] guarded by a
//! [`crate::link::TimedReader`] watchdog, then drives a fixed number of
//! frames through the wreckage and reports what happened.
//!
//! The delivery invariant ([`ChaosReport::verify`]): whatever the schedule
//! destroyed in flight, every frame is eventually stored **exactly once, in
//! order, with intact bytes** — retransmission must repair all damage — and
//! the server's intact-frame counters must partition exactly
//! (`frames_intact == frames_stored + frames_deduped + frames_gap_dropped +
//! decode_failures`).
//!
//! Schedules serialize to bytes, so the same engine backs the fuzzer's
//! wire-fault mode: a mutated corpus file becomes a schedule via
//! [`FaultSchedule::from_bytes`], and a failing seed minimizes like any
//! other fuzz input.

use std::io;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

use crate::fault::{FaultProfile, FaultSchedule, SplitMix64};
use crate::link::{throttled_pipe, PipeReader, PipeWriter, TimedReader};
use crate::protocol::NetError;
use crate::retry::RetryPolicy;
use crate::server::SessionServer;
use crate::session::{ResilientClient, SessionConfig, SessionStats};

/// Parameters of one chaos run. Everything observable is a pure function of
/// this config (plus the schedule, itself derived from `seed` unless
/// explicitly supplied).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the fault schedule, payload contents, and backoff jitter.
    pub seed: u64,
    /// Data frames the client sends.
    pub frames: usize,
    /// Bytes per synthetic payload.
    pub payload_len: usize,
    /// Fault intensity used when no explicit schedule is given.
    pub profile: FaultProfile,
    /// Ack-progress deadline before the client reconnects.
    pub send_timeout: Duration,
    /// Server-side stall watchdog per connection.
    pub watchdog: Duration,
    /// Client retry/backoff policy.
    pub retry: RetryPolicy,
}

impl ChaosConfig {
    /// The standard smoke configuration: 16 frames over a lossy 4G link.
    pub fn smoke(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            frames: 16,
            payload_len: 512,
            profile: FaultProfile::lossy_4g(),
            send_timeout: Duration::from_millis(200),
            watchdog: Duration::from_millis(500),
            retry: RetryPolicy::fast_test(),
        }
    }

    /// Heavy corruption and repeated disconnects.
    pub fn hostile(seed: u64) -> ChaosConfig {
        ChaosConfig { profile: FaultProfile::hostile(), ..ChaosConfig::smoke(seed) }
    }

    /// Tight-deadline configuration for the fuzzer's wire-fault mode, where
    /// arbitrary mutated schedules must complete (or give up) in a few
    /// seconds under the case watchdog. Pair with
    /// [`ChaosReport::verify_safety`]: hostile schedules may legitimately
    /// exhaust the retry budget.
    pub fn fuzz(seed: u64) -> ChaosConfig {
        let mut retry = RetryPolicy::fast_test();
        retry.max_retries = 6;
        ChaosConfig {
            seed,
            frames: 6,
            payload_len: 160,
            profile: FaultProfile::hostile(),
            send_timeout: Duration::from_millis(40),
            watchdog: Duration::from_millis(150),
            retry,
        }
    }

    /// The schedule this config derives when none is supplied explicitly.
    pub fn schedule(&self) -> FaultSchedule {
        // Spread events over the first clean transmission; retransmitted
        // bytes past this length flow fault-free (the schedule is finite).
        let stream_len = (self.frames * (self.payload_len + 20) + 64) as u64;
        FaultSchedule::generate(self.seed, &self.profile, stream_len)
    }
}

/// What one chaos run did; see [`ChaosReport::verify`] for the invariant.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The driving seed.
    pub seed: u64,
    /// Frames the client attempted to deliver.
    pub frames_sent: usize,
    /// Sequences stored server-side, in arrival order.
    pub stored_sequences: Vec<u32>,
    /// `true` when every stored payload is byte-identical to what was sent.
    pub payloads_intact: bool,
    /// Client outcome: session stats, or the typed error it gave up with.
    pub client: Result<SessionStats, String>,
    /// Replayed frames the server deduplicated.
    pub frames_deduped: usize,
    /// Out-of-order arrivals the server dropped for go-back-N to re-deliver.
    pub frames_gap_dropped: usize,
    /// Corrupt wire regions the server resynchronized past.
    pub resyncs: usize,
    /// Connections the server drained (first connect + reconnects).
    pub connections: usize,
    /// Fault events the schedule actually applied.
    pub faults_applied: u64,
    /// Per-kind applied counts, in [`crate::fault::FaultEvent`] declaration
    /// order (bit-flip, drop, disconnect, stall, duplicate, reorder,
    /// collapse).
    pub faults_by_kind: [u64; 7],
    /// `net.*` counters from the run's collector (empty without the
    /// `metrics` feature).
    pub counters: Vec<(String, u64)>,
}

impl ChaosReport {
    /// Look up a captured counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
    }

    /// Check the delivery and accounting invariants; `Err` describes the
    /// first violation.
    pub fn verify(&self) -> Result<(), String> {
        if let Err(e) = &self.client {
            return Err(format!("seed {}: client failed: {e}", self.seed));
        }
        let expected: Vec<u32> = (0..self.frames_sent as u32).collect();
        if self.stored_sequences != expected {
            return Err(format!(
                "seed {}: stored {:?} (wanted 0..{} exactly once, in order)",
                self.seed, self.stored_sequences, self.frames_sent
            ));
        }
        self.verify_safety()
    }

    /// The safety subset of [`ChaosReport::verify`]: whatever the client
    /// managed (it may have exhausted its retry budget against a sufficiently
    /// hostile schedule), the server's store must be an exact in-order prefix
    /// `0..k` with intact bytes, and the counters must partition. This is the
    /// contract the fuzzer's arbitrary mutated schedules are held to.
    pub fn verify_safety(&self) -> Result<(), String> {
        let prefix: Vec<u32> = (0..self.stored_sequences.len() as u32).collect();
        if self.stored_sequences != prefix {
            return Err(format!(
                "seed {}: stored {:?} is not an exactly-once in-order prefix",
                self.seed, self.stored_sequences
            ));
        }
        if self.stored_sequences.len() > self.frames_sent {
            return Err(format!(
                "seed {}: stored {} frames but only {} were ever sent",
                self.seed,
                self.stored_sequences.len(),
                self.frames_sent
            ));
        }
        if !self.payloads_intact {
            return Err(format!("seed {}: a stored payload differs from what was sent", self.seed));
        }
        // Counter partition (when the metrics feature captured counters):
        // every intact data frame is stored, deduplicated, gap-dropped, or a
        // decode failure — nothing vanishes.
        if !self.counters.is_empty() {
            let intact = self.counter("net.frames_intact");
            let parts = self.counter("net.frames_stored")
                + self.counter("net.frames_deduped")
                + self.counter("net.frames_gap_dropped")
                + self.counter("net.decode_failures");
            if intact != parts {
                return Err(format!(
                    "seed {}: counter partition broken: frames_intact {} != \
                     stored+deduped+gap_dropped+decode_failures {}",
                    self.seed, intact, parts
                ));
            }
        }
        Ok(())
    }

    /// One-line human summary for recovery reports.
    pub fn summary(&self) -> String {
        let client = match &self.client {
            Ok(stats) => format!(
                "retries {} reconnects {} retransmits {} timeouts {}",
                stats.retries, stats.reconnects, stats.retransmits, stats.timeouts
            ),
            Err(e) => format!("FAILED: {e}"),
        };
        format!(
            "seed {}: {}/{} frames stored, {} faults applied, {} resyncs, {} deduped, \
             {} gap-dropped, {} connections; client: {}",
            self.seed,
            self.stored_sequences.len(),
            self.frames_sent,
            self.faults_applied,
            self.resyncs,
            self.frames_deduped,
            self.frames_gap_dropped,
            self.connections,
            client
        )
    }
}

/// Deterministic payload for frame `index` of a run: content is a function
/// of (seed, index) so the server side can be checked byte-for-byte.
pub fn chaos_payload(seed: u64, index: usize, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64(seed ^ 0xC0DE_0000_0000_0000 ^ (index as u64).wrapping_mul(0x9E37));
    let mut out = Vec::with_capacity(len.max(4));
    out.extend_from_slice(&(index as u32).to_le_bytes());
    while out.len() < len.max(4) {
        out.extend_from_slice(&rng.next().to_le_bytes());
    }
    out.truncate(len.max(4));
    out
}

/// [`run_chaos`] with the schedule derived from the config's seed.
pub fn run_chaos(config: &ChaosConfig) -> ChaosReport {
    run_chaos_with_schedule(config, config.schedule())
}

/// Drive one full client/server run through `schedule`; never panics on any
/// schedule (hostile ones are clamped by the fault layer's budgets).
pub fn run_chaos_with_schedule(config: &ChaosConfig, schedule: FaultSchedule) -> ChaosReport {
    let state = schedule.into_state();

    #[cfg(feature = "metrics")]
    let collector = dbgc_metrics::Collector::new();

    // Acceptor: the connector ships each new connection's server-side halves
    // (data reader, ack writer) to the server thread.
    let (accept_tx, accept_rx) = channel::<(PipeReader, PipeWriter)>();
    let watchdog = config.watchdog;
    #[cfg(feature = "metrics")]
    let server_collector = collector.clone();
    let server = std::thread::Builder::new()
        .name("dbgc-chaos-server".into())
        .spawn(move || {
            let mut core = SessionServer::new(false);
            #[cfg(feature = "metrics")]
            {
                core = core.with_metrics(&server_collector);
            }
            let mut connections = 0usize;
            while let Ok((rx, ack)) = accept_rx.recv() {
                connections += 1;
                // A timed-out or broken connection ends; the session state
                // survives for the client's next attempt.
                let _ = core.serve_connection(TimedReader::new(rx, watchdog), Some(ack));
            }
            (core, connections)
        })
        .expect("spawn chaos server");

    let link_state = Arc::clone(&state);
    let connector = move || -> io::Result<(crate::fault::FaultyLink<PipeWriter>, PipeReader)> {
        let (data_tx, data_rx) = throttled_pipe(None);
        let (ack_tx, ack_rx) = throttled_pipe(None);
        accept_tx
            .send((data_rx, ack_tx))
            .map_err(|_| io::Error::new(io::ErrorKind::ConnectionRefused, "server gone"))?;
        Ok((crate::fault::FaultyLink::new(data_tx, Arc::clone(&link_state)), ack_rx))
    };

    let mut session = SessionConfig::fast_test(config.seed);
    session.send_timeout = config.send_timeout;
    session.retry = config.retry;
    let mut client = ResilientClient::new(connector, session);
    #[cfg(feature = "metrics")]
    {
        client = client.with_metrics(&collector);
    }

    let mut client_result: Result<SessionStats, NetError> = Ok(SessionStats::default());
    for index in 0..config.frames {
        let payload = chaos_payload(config.seed, index, config.payload_len);
        if let Err(e) = client.send_payload(payload) {
            client_result = Err(e);
            break;
        }
    }
    if client_result.is_ok() {
        client_result = client.finish();
    } else {
        drop(client); // close the acceptor so the server thread exits
    }

    let (core, connections) = server.join().expect("chaos server thread");
    let stored_sequences: Vec<u32> = core.frames().iter().map(|f| f.sequence).collect();
    let payloads_intact = core
        .frames()
        .iter()
        .all(|f| f.bytes == chaos_payload(config.seed, f.sequence as usize, config.payload_len));
    let (mut deduped, mut gap_dropped) = (0usize, 0usize);
    for a in core.anomalies() {
        match a.kind {
            crate::server::AnomalyKind::Duplicate => deduped += 1,
            crate::server::AnomalyKind::Gap => gap_dropped += 1,
        }
    }
    let resyncs = core.dropped().iter().filter(|d| d.bytes_skipped > 0).count();
    let (faults_applied, faults_by_kind) = {
        let st = state.lock().expect("fault state");
        (st.events_applied(), st.applied_by_kind())
    };

    #[cfg(feature = "metrics")]
    let counters: Vec<(String, u64)> = collector.snapshot().counters.into_iter().collect();
    #[cfg(not(feature = "metrics"))]
    let counters: Vec<(String, u64)> = Vec::new();

    ChaosReport {
        seed: config.seed,
        frames_sent: config.frames,
        stored_sequences,
        payloads_intact,
        client: client_result.map_err(|e| e.to_string()),
        frames_deduped: deduped,
        frames_gap_dropped: gap_dropped,
        resyncs,
        connections,
        faults_applied,
        faults_by_kind,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_schedule_delivers_everything_first_try() {
        let config = ChaosConfig::smoke(1);
        let report = run_chaos_with_schedule(&config, FaultSchedule::empty());
        report.verify().unwrap();
        assert_eq!(report.connections, 1);
        assert_eq!(report.faults_applied, 0);
        assert_eq!(report.resyncs, 0);
        let stats = report.client.as_ref().unwrap();
        assert_eq!(stats.reconnects, 0);
        assert_eq!(stats.retransmits, 0);
    }

    #[test]
    fn lossy_schedule_recovers_every_frame() {
        // Seed 3 applies a representative mix of faults; recovery must be
        // total. (The full sweep lives in tests/chaos.rs.)
        let report = run_chaos(&ChaosConfig::smoke(3));
        report.verify().unwrap_or_else(|e| panic!("{e}\n{}", report.summary()));
        assert!(report.faults_applied > 0, "schedule was not a no-op");
    }

    #[test]
    fn payload_generator_is_deterministic_and_distinct() {
        assert_eq!(chaos_payload(5, 2, 100), chaos_payload(5, 2, 100));
        assert_ne!(chaos_payload(5, 2, 100), chaos_payload(5, 3, 100));
        assert_ne!(chaos_payload(6, 2, 100), chaos_payload(5, 2, 100));
        assert_eq!(chaos_payload(1, 0, 0).len(), 4, "sequence prefix always present");
    }
}
