//! A Draco-style kd-tree point-cloud geometry coder (baseline of paper §4.1).
//!
//! Google Draco \[23\] compresses geometry by quantizing coordinates to `qb`
//! bits and recursively bisecting the integer cell along its widest axis,
//! encoding at every split how many points fall into the lower half. With `n`
//! points in a node the count is uniform in `[0, n]`, so it costs about
//! `log₂(n+1)` bits via the range coder; the positions themselves are never
//! written — they are implied by the cell boundaries when recursion bottoms
//! out.
//!
//! The paper drives Draco by choosing `qb` to match a target error bound
//! `q_xyz` (`q_xyz = Ω / 2^qb` with `Ω` the widest bounding-box side). We
//! reconstruct points at cell centres, so we need cell side `<= 2·q_xyz`,
//! i.e. `qb = ceil(log₂(Ω / (2·q_xyz)))`.

#![warn(missing_docs)]

use dbgc_codec::varint::{write_f64, write_uvarint, ByteReader};
use dbgc_codec::{CodecError, RangeDecoder, RangeEncoder};
use dbgc_geom::{Aabb, Point3};

/// Maximum quantization bits per axis.
pub const MAX_QB: u32 = 30;

/// Default decode budget: far above any real LiDAR frame while keeping
/// hostile declared counts from demanding gigabytes.
pub const DEFAULT_MAX_POINTS: usize = 1 << 24;

/// Result of encoding.
#[derive(Debug, Clone)]
pub struct KdEncodeResult {
    /// The compressed bitstream.
    pub bytes: Vec<u8>,
    /// `mapping[i]` is the index of input point `i` in the decoded output.
    pub mapping: Vec<usize>,
    /// The quantization bits actually used.
    pub qb: u32,
}

/// Result of decoding.
#[derive(Debug, Clone)]
pub struct KdDecodeResult {
    /// Decoded points (cell centres, duplicates preserved).
    pub points: Vec<Point3>,
}

/// The kd-tree geometry codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct KdTreeCodec;

/// Quantization bits needed for error bound `q_xyz` on a box of widest side
/// `omega` when reconstructing at cell centres.
pub fn qb_for_error_bound(omega: f64, q_xyz: f64) -> u32 {
    assert!(q_xyz > 0.0);
    if omega <= 2.0 * q_xyz {
        return 1;
    }
    let qb = (omega / (2.0 * q_xyz)).log2().ceil() as u32;
    // Guard against floating-point slop.
    let qb = if omega / (1u64 << qb.min(62)) as f64 > 2.0 * q_xyz { qb + 1 } else { qb };
    qb.clamp(1, MAX_QB)
}

struct NodeTask {
    /// Range into the permutation array.
    start: usize,
    end: usize,
    /// Cell minimum (inclusive) per axis, in quantized units.
    min: [u32; 3],
    /// log2 of cell extent per axis.
    bits: [u32; 3],
}

impl KdTreeCodec {
    /// Compress with an explicit bit budget per axis.
    pub fn encode_with_qb(&self, points: &[Point3], qb: u32) -> KdEncodeResult {
        assert!((1..=MAX_QB).contains(&qb));
        let mut out = Vec::new();
        let Some(bb) = Aabb::from_points(points) else {
            write_uvarint(&mut out, 0);
            return KdEncodeResult { bytes: out, mapping: Vec::new(), qb };
        };
        let omega = bb.longest_side().max(f64::MIN_POSITIVE);
        let cells = 1u64 << qb;
        let step = omega * (1.0 + 1e-12) / cells as f64;

        write_uvarint(&mut out, points.len() as u64);
        write_f64(&mut out, bb.min.x);
        write_f64(&mut out, bb.min.y);
        write_f64(&mut out, bb.min.z);
        write_f64(&mut out, step);
        write_uvarint(&mut out, qb as u64);

        let quantized: Vec<[u32; 3]> = points
            .iter()
            .map(|p| {
                let q = |v: f64, lo: f64| (((v - lo) / step) as u64).min(cells - 1) as u32;
                [q(p.x, bb.min.x), q(p.y, bb.min.y), q(p.z, bb.min.z)]
            })
            .collect();

        // perm[k] = original index of the k-th point in DFS output order.
        let mut perm: Vec<u32> = (0..points.len() as u32).collect();
        let mut enc = RangeEncoder::new();
        let mut stack = vec![NodeTask { start: 0, end: points.len(), min: [0; 3], bits: [qb; 3] }];
        while let Some(task) = stack.pop() {
            let n = task.end - task.start;
            if n == 0 {
                continue;
            }
            let axis = (0..3).max_by_key(|&a| task.bits[a]).expect("3 axes");
            if task.bits[axis] == 0 {
                // Cell is a single quantized position: nothing more to code.
                continue;
            }
            let half_bits = task.bits[axis] - 1;
            let split = task.min[axis] + (1u32 << half_bits);
            // Stable partition of perm[start..end] by the split plane.
            let (mut lo, mut hi): (Vec<u32>, Vec<u32>) = (Vec::new(), Vec::new());
            for &idx in &perm[task.start..task.end] {
                if quantized[idx as usize][axis] < split {
                    lo.push(idx);
                } else {
                    hi.push(idx);
                }
            }
            let n_left = lo.len();
            perm[task.start..task.start + n_left].copy_from_slice(&lo);
            perm[task.start + n_left..task.end].copy_from_slice(&hi);
            // Encode |left| uniform over [0, n].
            enc.encode(n_left as u64, 1, n as u64 + 1);

            let mut right = task.min;
            right[axis] = split;
            let mut child_bits = task.bits;
            child_bits[axis] = half_bits;
            // Push right first so the left child is processed first (DFS
            // pre-order must match the decoder).
            if task.end - task.start - n_left > 0 {
                stack.push(NodeTask {
                    start: task.start + n_left,
                    end: task.end,
                    min: right,
                    bits: child_bits,
                });
            }
            if n_left > 0 {
                stack.push(NodeTask {
                    start: task.start,
                    end: task.start + n_left,
                    min: task.min,
                    bits: child_bits,
                });
            }
        }
        out.extend_from_slice(&enc.finish());

        let mut mapping = vec![0usize; points.len()];
        for (pos, &orig) in perm.iter().enumerate() {
            mapping[orig as usize] = pos;
        }
        KdEncodeResult { bytes: out, mapping, qb }
    }

    /// Compress `points` so the per-axis reconstruction error is `<= q_xyz`.
    pub fn encode(&self, points: &[Point3], q_xyz: f64) -> KdEncodeResult {
        let omega = Aabb::from_points(points).map(|bb| bb.longest_side()).unwrap_or(0.0);
        self.encode_with_qb(points, qb_for_error_bound(omega.max(f64::MIN_POSITIVE), q_xyz))
    }

    /// Decompress a stream produced by the encoder.
    ///
    /// Output is capped at [`DEFAULT_MAX_POINTS`] points; use
    /// [`KdTreeCodec::decode_with_limit`] to pick a different budget.
    pub fn decode(&self, bytes: &[u8]) -> Result<KdDecodeResult, CodecError> {
        self.decode_with_limit(bytes, DEFAULT_MAX_POINTS)
    }

    /// Decompress with an explicit point budget: a declared count above
    /// `max_points` fails with a typed error before any allocation sized by
    /// untrusted input.
    pub fn decode_with_limit(
        &self,
        bytes: &[u8],
        max_points: usize,
    ) -> Result<KdDecodeResult, CodecError> {
        let mut r = ByteReader::new(bytes);
        let n = r.read_uvarint()? as usize;
        if n == 0 {
            return Ok(KdDecodeResult { points: Vec::new() });
        }
        if n > max_points {
            return Err(CodecError::CorruptStream("kd point count exceeds limit"));
        }
        let min_x = r.read_f64()?;
        let min_y = r.read_f64()?;
        let min_z = r.read_f64()?;
        let step = r.read_f64()?;
        if ![min_x, min_y, min_z, step].iter().all(|v| v.is_finite() && v.abs() <= 1e15) {
            return Err(CodecError::CorruptStream("kd header out of range"));
        }
        let qb = r.read_uvarint()? as u32;
        if !(1..=MAX_QB).contains(&qb) {
            return Err(CodecError::CorruptStream("kd qb out of range"));
        }
        let coded = r.read_slice(r.remaining())?;
        let mut dec = RangeDecoder::new(coded);

        let mut points = Vec::with_capacity(n);
        struct DecTask {
            n: usize,
            min: [u32; 3],
            bits: [u32; 3],
        }
        let mut stack = vec![DecTask { n, min: [0; 3], bits: [qb; 3] }];
        while let Some(task) = stack.pop() {
            if task.n == 0 {
                continue;
            }
            let axis = (0..3).max_by_key(|&a| task.bits[a]).expect("3 axes");
            if task.bits[axis] == 0 {
                // Terminal cell: emit n duplicates at the cell centre.
                let p = Point3::new(
                    min_x + (task.min[0] as f64 + 0.5) * step,
                    min_y + (task.min[1] as f64 + 0.5) * step,
                    min_z + (task.min[2] as f64 + 0.5) * step,
                );
                points.extend(std::iter::repeat(p).take(task.n));
                continue;
            }
            let total = task.n as u64 + 1;
            let n_left = dec.decode_freq(total)?;
            dec.decode(n_left, 1, total);
            let n_left = n_left as usize;

            let half_bits = task.bits[axis] - 1;
            let mut right = task.min;
            right[axis] = task.min[axis] + (1u32 << half_bits);
            let mut child_bits = task.bits;
            child_bits[axis] = half_bits;
            if task.n - n_left > 0 {
                stack.push(DecTask { n: task.n - n_left, min: right, bits: child_bits });
            }
            if n_left > 0 {
                stack.push(DecTask { n: n_left, min: task.min, bits: child_bits });
            }
        }
        if points.len() != n {
            return Err(CodecError::CorruptStream("kd decoded point count mismatch"));
        }
        Ok(KdDecodeResult { points })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_cloud(n: usize, seed: u64, span: f64) -> Vec<Point3> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.gen_range(-span..span),
                    rng.gen_range(-span..span),
                    rng.gen_range(-3.0..9.0),
                )
            })
            .collect()
    }

    fn check_roundtrip(points: &[Point3], q: f64) -> usize {
        let codec = KdTreeCodec;
        let enc = codec.encode(points, q);
        let dec = codec.decode(&enc.bytes).unwrap();
        assert_eq!(dec.points.len(), points.len());
        for (i, &p) in points.iter().enumerate() {
            let d = dec.points[enc.mapping[i]];
            assert!(p.linf_dist(d) <= q + 1e-9, "point {i}: err {} > {q}", p.linf_dist(d));
        }
        enc.bytes.len()
    }

    #[test]
    fn qb_matches_bound() {
        assert_eq!(qb_for_error_bound(1.0, 0.5), 1);
        let qb = qb_for_error_bound(80.0, 0.02);
        assert!(80.0 / (1u64 << qb) as f64 <= 0.04 + 1e-12);
        assert!(qb <= 12);
    }

    #[test]
    fn roundtrip_random() {
        let pts = random_cloud(4000, 30, 40.0);
        check_roundtrip(&pts, 0.02);
    }

    #[test]
    fn roundtrip_coarse() {
        let pts = random_cloud(4000, 31, 40.0);
        let fine = check_roundtrip(&pts, 0.005);
        let coarse = check_roundtrip(&pts, 0.16);
        assert!(coarse < fine);
    }

    #[test]
    fn empty_and_single() {
        check_roundtrip(&[], 0.02);
        check_roundtrip(&[Point3::new(1.0, 2.0, 3.0)], 0.02);
    }

    #[test]
    fn duplicates_preserved() {
        let pts = vec![Point3::new(0.5, 0.5, 0.5); 12];
        let enc = KdTreeCodec.encode(&pts, 0.02);
        let dec = KdTreeCodec.decode(&enc.bytes).unwrap();
        assert_eq!(dec.points.len(), 12);
    }

    #[test]
    fn clustered_beats_uniform() {
        // kd coders share split bits among co-located points.
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let clustered: Vec<Point3> = (0..5000)
            .map(|i| {
                let c = (i % 5) as f64 * 15.0;
                Point3::new(
                    c + rng.gen_range(-0.5..0.5),
                    c + rng.gen_range(-0.5..0.5),
                    rng.gen_range(-0.5..0.5),
                )
            })
            .collect();
        let uniform = random_cloud(5000, 33, 40.0);
        let cs = check_roundtrip(&clustered, 0.02);
        let us = check_roundtrip(&uniform, 0.02);
        assert!(cs < us, "clustered {cs} vs uniform {us}");
    }

    #[test]
    fn truncated_stream_fails_or_differs() {
        let pts = random_cloud(1000, 34, 20.0);
        let enc = KdTreeCodec.encode(&pts, 0.02);
        // Cutting the header must error; cutting coded payload may decode
        // garbage but must not panic.
        assert!(KdTreeCodec.decode(&enc.bytes[..8]).is_err());
        let _ = KdTreeCodec.decode(&enc.bytes[..enc.bytes.len() - 4]);
    }
}
