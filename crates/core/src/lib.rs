//! # DBGC — Density-Based Geometry Compression for LiDAR Point Clouds
//!
//! A from-scratch Rust implementation of the DBGC compression scheme
//! (Sun & Luo, EDBT 2023): error-bounded geometry compression that splits a
//! LiDAR cloud by local density, compresses dense points with an octree, and
//! organizes sparse points into polylines in spherical coordinates that are
//! compressed with delta transforms — including a radial-distance-optimized
//! delta encoding with consensus reference polylines — plus a quadtree path
//! for outliers.
//!
//! ## Quickstart
//!
//! ```
//! use dbgc::{Dbgc, decompress};
//! use dbgc_geom::{Point3, PointCloud};
//!
//! // Any point cloud; here a toy ring.
//! let cloud: PointCloud = (0..3000)
//!     .map(|i| {
//!         let th = i as f64 / 3000.0 * std::f64::consts::TAU;
//!         Point3::new(20.0 * th.cos(), 20.0 * th.sin(), -1.7)
//!     })
//!     .collect();
//!
//! // Compress with a 2 cm error bound.
//! let dbgc = Dbgc::with_error_bound(0.02);
//! let frame = dbgc.compress(&cloud).unwrap();
//! println!("ratio: {:.1}x", frame.compression_ratio());
//!
//! // Decompress: same number of points, each within the error bound of its
//! // original (frame.mapping gives the one-to-one pairing).
//! let (restored, _stats) = decompress(&frame.bytes).unwrap();
//! assert_eq!(restored.len(), cloud.len());
//! let report = dbgc::verify_roundtrip(&cloud, &restored, &frame, 0.02).unwrap();
//! assert!(report.max_euclidean_error <= 0.035);
//! ```
//!
//! ## Modules
//!
//! * [`config`] — [`DbgcConfig`]: error bound, clustering choice, grouping,
//!   ablation toggles (−Radial / −Group / −Conversion), outlier mode;
//! * [`pipeline`] — the compressor ([`Dbgc::compress`]);
//! * [`decompress()`](fn@decompress) — the decompressor;
//! * [`sparse`] — polyline organization (Algorithm 1) and the coordinate
//!   codec (steps 1–9, Algorithm 2);
//! * [`outlier`] — quadtree/octree/raw outlier compression (Table 2);
//! * [`verify`] — round-trip error-bound verification;
//! * [`stats`] — section sizes and the Fig. 13 timing breakdown.

#![warn(missing_docs)]

pub mod config;
pub mod decompress;
pub mod error;
pub mod index;
pub mod layout;
pub mod outlier;
pub(crate) mod par;
pub mod pipeline;
pub mod sparse;
pub mod stats;
pub mod verify;

pub use config::{ClusteringAlgorithm, DbgcConfig, OutlierMode, SplitStrategy};
pub use dbgc_codec::EntropyProfile;
#[cfg(feature = "metrics")]
pub use decompress::decompress_with_metrics;
pub use decompress::{decompress, inspect, DecompressStats, StreamInfo};
pub use error::DbgcError;
pub use index::{split_index_trailer, IndexTrailer, SpatialDirectory};
pub use layout::{SectionSpans, StreamHeader};
pub use pipeline::{CompressedFrame, Dbgc};
pub use stats::{CompressionStats, SectionSizes, TimingBreakdown};
pub use verify::verify_roundtrip;

/// Re-export of the observability crate, so dependents that already depend
/// on `dbgc` with the `metrics` feature can name `Collector`/`Snapshot`
/// without a separate dependency line.
#[cfg(feature = "metrics")]
pub use dbgc_metrics as metrics;

#[cfg(test)]
mod tests {
    use super::*;
    use dbgc_geom::{Point3, PointCloud};
    use rand::{Rng, SeedableRng};

    fn lidar_cloud(seed: u64) -> PointCloud {
        crate::verify::tests::mini_lidar_cloud(seed, 3000, 8)
    }

    #[test]
    fn roundtrip_default_config() {
        let cloud = lidar_cloud(10);
        let dbgc = Dbgc::with_error_bound(0.02);
        let frame = dbgc.compress(&cloud).unwrap();
        let (dec, _) = decompress(&frame.bytes).unwrap();
        verify_roundtrip(&cloud, &dec, &frame, 0.02).unwrap();
        assert!(frame.compression_ratio() > 4.0, "ratio {}", frame.compression_ratio());
    }

    #[test]
    fn roundtrip_all_clustering_algorithms() {
        let cloud = lidar_cloud(11);
        for alg in [
            ClusteringAlgorithm::Approximate,
            ClusteringAlgorithm::CellBased,
            ClusteringAlgorithm::Dbscan,
        ] {
            let mut cfg = DbgcConfig::with_error_bound(0.02);
            cfg.split = SplitStrategy::Density(alg);
            let frame = Dbgc::new(cfg).compress(&cloud).unwrap();
            let (dec, _) = decompress(&frame.bytes).unwrap();
            verify_roundtrip(&cloud, &dec, &frame, 0.02).unwrap();
        }
    }

    #[test]
    fn roundtrip_ablations() {
        let cloud = lidar_cloud(12);
        for cfg in [
            DbgcConfig::with_error_bound(0.02).without_radial(),
            DbgcConfig::with_error_bound(0.02).without_grouping(),
            DbgcConfig::with_error_bound(0.02).without_conversion(),
        ] {
            let frame = Dbgc::new(cfg).compress(&cloud).unwrap();
            let (dec, _) = decompress(&frame.bytes).unwrap();
            verify_roundtrip(&cloud, &dec, &frame, 0.02).unwrap();
        }
    }

    #[test]
    fn roundtrip_outlier_modes() {
        let cloud = lidar_cloud(13);
        for mode in [OutlierMode::Quadtree, OutlierMode::Octree, OutlierMode::None] {
            let mut cfg = DbgcConfig::with_error_bound(0.02);
            cfg.outlier_mode = mode;
            let frame = Dbgc::new(cfg).compress(&cloud).unwrap();
            let (dec, _) = decompress(&frame.bytes).unwrap();
            verify_roundtrip(&cloud, &dec, &frame, 0.02).unwrap();
        }
    }

    #[test]
    fn roundtrip_nearest_fraction_sweep() {
        let cloud = lidar_cloud(14);
        for f in [0.0, 0.4, 1.0] {
            let mut cfg = DbgcConfig::with_error_bound(0.02);
            cfg.split = SplitStrategy::NearestFraction(f);
            let frame = Dbgc::new(cfg).compress(&cloud).unwrap();
            let (dec, _) = decompress(&frame.bytes).unwrap();
            verify_roundtrip(&cloud, &dec, &frame, 0.02).unwrap();
            if f == 1.0 {
                assert_eq!(frame.stats.dense_points, cloud.len());
            }
            if f == 0.0 {
                assert_eq!(frame.stats.dense_points, 0);
            }
        }
    }

    #[test]
    fn roundtrip_various_error_bounds() {
        let cloud = lidar_cloud(15);
        let mut last_size = usize::MAX;
        for q in [0.0006, 0.002, 0.008, 0.02] {
            let frame = Dbgc::with_error_bound(q).compress(&cloud).unwrap();
            let (dec, _) = decompress(&frame.bytes).unwrap();
            verify_roundtrip(&cloud, &dec, &frame, q).unwrap();
            assert!(frame.bytes.len() < last_size, "coarser bound must not enlarge the stream");
            last_size = frame.bytes.len();
        }
    }

    #[test]
    fn empty_and_tiny_clouds() {
        let dbgc = Dbgc::with_error_bound(0.02);
        for n in [0usize, 1, 2, 5] {
            let cloud: PointCloud = (0..n).map(|i| Point3::new(i as f64, 1.0, -1.0)).collect();
            let frame = dbgc.compress(&cloud).unwrap();
            let (dec, _) = decompress(&frame.bytes).unwrap();
            assert_eq!(dec.len(), n);
            verify_roundtrip(&cloud, &dec, &frame, 0.02).unwrap();
        }
    }

    #[test]
    fn duplicate_points_preserved() {
        let mut cloud = PointCloud::new();
        for _ in 0..50 {
            cloud.push(Point3::new(3.0, 4.0, -1.0));
        }
        let frame = Dbgc::with_error_bound(0.02).compress(&cloud).unwrap();
        let (dec, _) = decompress(&frame.bytes).unwrap();
        assert_eq!(dec.len(), 50);
    }

    #[test]
    fn non_finite_points_rejected() {
        let mut cloud = lidar_cloud(16);
        cloud.push(Point3::new(f64::NAN, 0.0, 0.0));
        assert!(matches!(
            Dbgc::with_error_bound(0.02).compress(&cloud),
            Err(DbgcError::NonFinitePoint { .. })
        ));
    }

    #[test]
    fn corrupt_streams_do_not_panic() {
        let cloud = lidar_cloud(17);
        let frame = Dbgc::with_error_bound(0.02).compress(&cloud).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        // Truncations.
        for cut in [0, 3, 5, 20, frame.bytes.len() / 2] {
            let _ = decompress(&frame.bytes[..cut]);
        }
        // Random single-byte corruptions: must error or decode, never panic.
        for _ in 0..40 {
            let mut bytes = frame.bytes.clone();
            let at = rng.gen_range(0..bytes.len());
            bytes[at] ^= 1 << rng.gen_range(0..8);
            let _ = decompress(&bytes);
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        assert!(matches!(decompress(b"NOPE\x01rest"), Err(DbgcError::BadHeader(_))));
        assert!(decompress(&[]).is_err());
    }

    #[test]
    fn stats_are_consistent() {
        let cloud = lidar_cloud(18);
        let frame = Dbgc::with_error_bound(0.02).compress(&cloud).unwrap();
        let s = &frame.stats;
        assert_eq!(s.dense_points + s.sparse_points + s.outlier_points, s.total_points);
        assert_eq!(s.sections.total(), frame.bytes.len());
        assert!(s.polylines > 0);
    }

    #[test]
    fn mapping_is_a_permutation() {
        let cloud = lidar_cloud(19);
        let frame = Dbgc::with_error_bound(0.02).compress(&cloud).unwrap();
        let mut seen = vec![false; frame.mapping.len()];
        for &m in &frame.mapping {
            assert!(m < seen.len() && !seen[m]);
            seen[m] = true;
        }
    }
}
