//! The spatial directory: a versioned, CRC-guarded index trailer appended
//! after the stream body so archives can answer spatial queries without
//! decompressing everything.
//!
//! ## Trailer layout (tail-anchored)
//!
//! ```text
//! stream body | payload | u32le crc32(payload) | u32le payload_len |
//! u8 index_version | "DIDX"
//! ```
//!
//! Anchoring the frame at the *tail* lets decoders that know nothing about
//! indexes strip it with a constant-time suffix check: [`split_index_trailer`]
//! runs before any sequential decode, and only a CRC-valid trailer is
//! skipped, so a genuine version-1 stream that happens to end in `DIDX` is
//! (up to a 2⁻³² CRC coincidence) still decoded whole. Streams without the
//! magic are untouched — golden vectors stay byte-identical.
//!
//! ## Directory payload
//!
//! The payload serializes a [`SpatialDirectory`]: per-section byte spans,
//! point counts, conservative AABBs of the *decoded* points, the dense
//! octree depth, and per-group radial intervals. Every bound is computed at
//! encode time from the exact values the decoder will reconstruct, so a
//! query planner pruning on them can never drop a matching point.

use dbgc_codec::varint::{write_f64, write_uvarint, ByteReader};
use dbgc_geom::{Aabb, Point3};

use crate::DbgcError;

/// Version of the directory payload format.
pub const INDEX_VERSION: u8 = 1;

/// Trailer magic, last four bytes of an indexed stream.
pub const INDEX_MAGIC: [u8; 4] = *b"DIDX";

/// Fixed trailer overhead beyond the payload: crc (4) + len (4) +
/// version (1) + magic (4).
const TRAILER_FIXED: usize = 13;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — table built at compile time.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Directory model
// ---------------------------------------------------------------------------

/// Index record for one byte-addressable stream section.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionEntry {
    /// Byte offset of the section within the stream body.
    pub offset: usize,
    /// Section length in bytes.
    pub len: usize,
    /// Number of points the section decodes to.
    pub points: usize,
    /// Conservative AABB of the section's decoded points (`None` when the
    /// section is empty).
    pub aabb: Option<Aabb>,
}

/// Index record for one sparse polyline group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupEntry {
    /// Byte span, point count and decoded-point bounds.
    pub section: SectionEntry,
    /// Minimum distance-from-origin over the group's decoded points
    /// (`f64::INFINITY` for an empty group).
    pub r_min: f64,
    /// Maximum distance-from-origin over the group's decoded points
    /// (`0.0` for an empty group).
    pub r_max: f64,
}

/// The spatial directory of one compressed frame.
///
/// Emitted by the encoder when
/// [`spatial_index`](crate::DbgcConfig::spatial_index) is on; carried in the
/// stream's tail trailer and used by `dbgc-store` to plan partial decodes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialDirectory {
    /// Total point count of the frame.
    pub points: usize,
    /// Header length in bytes (sections start here).
    pub header_len: usize,
    /// The dense octree section.
    pub dense: SectionEntry,
    /// Octree depth of the dense section (its LOD depth; 0 when empty).
    pub dense_depth: u32,
    /// One entry per sparse group, in stream order.
    pub groups: Vec<GroupEntry>,
    /// The outlier section.
    pub outlier: SectionEntry,
}

impl SpatialDirectory {
    /// Union of the per-section AABBs: conservative bounds of every decoded
    /// point of the frame (`None` for an empty frame).
    pub fn frame_aabb(&self) -> Option<Aabb> {
        let mut acc: Option<Aabb> = None;
        let mut fold = |bb: &Option<Aabb>| {
            if let Some(bb) = bb {
                acc = Some(match acc {
                    Some(a) => a.union(*bb),
                    None => *bb,
                });
            }
        };
        fold(&self.dense.aabb);
        for g in &self.groups {
            fold(&g.section.aabb);
        }
        fold(&self.outlier.aabb);
        acc
    }

    /// Serialize the directory payload (without the trailer frame).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(INDEX_VERSION);
        write_uvarint(&mut out, self.points as u64);
        write_uvarint(&mut out, self.header_len as u64);
        write_section(&mut out, &self.dense);
        write_uvarint(&mut out, self.dense_depth as u64);
        write_uvarint(&mut out, self.groups.len() as u64);
        for g in &self.groups {
            write_section(&mut out, &g.section);
            write_f64(&mut out, g.r_min);
            write_f64(&mut out, g.r_max);
        }
        write_section(&mut out, &self.outlier);
        out
    }

    /// Parse a directory payload, validating every field against the stream
    /// body it claims to describe (`body_len` bytes).
    ///
    /// Hardened: offsets and lengths must lie within the body, point counts
    /// within the body's decode budget, group count within the body's
    /// framing minimum, and all floats finite — so a hostile payload cannot
    /// drive overallocation or out-of-range seeks downstream.
    pub fn parse(payload: &[u8], body_len: usize) -> Result<SpatialDirectory, DbgcError> {
        let mut r = ByteReader::new(payload);
        let version = r.read_u8().map_err(|_| DbgcError::BadHeader("missing index version"))?;
        if version != INDEX_VERSION {
            return Err(DbgcError::BadHeader("unsupported index version"));
        }
        let budget = crate::layout::point_budget(body_len);
        let points = read_count(&mut r, budget, "index point count")?;
        let header_len = read_count(&mut r, body_len, "index header length")?;
        let dense = read_section(&mut r, body_len, budget)?;
        let dense_depth = read_count(&mut r, 64, "index dense depth")? as u32;
        let n_groups = read_count(&mut r, body_len / 8, "index group count")?;
        let mut groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let section = read_section(&mut r, body_len, budget)?;
            let r_min = r.read_f64().map_err(DbgcError::from)?;
            let r_max = r.read_f64().map_err(DbgcError::from)?;
            // Empty groups carry the (+inf, 0) identity interval; non-empty
            // ones must be an ordered, finite, non-negative interval.
            let empty_interval = r_min == f64::INFINITY && r_max == 0.0;
            let valid_interval =
                r_min.is_finite() && r_max.is_finite() && r_min >= 0.0 && r_min <= r_max;
            if !empty_interval && !valid_interval {
                return Err(DbgcError::BadHeader("invalid index radial interval"));
            }
            groups.push(GroupEntry { section, r_min, r_max });
        }
        let outlier = read_section(&mut r, body_len, budget)?;
        if !r.is_empty() {
            return Err(DbgcError::BadHeader("trailing bytes in index payload"));
        }
        Ok(SpatialDirectory { points, header_len, dense, dense_depth, groups, outlier })
    }
}

fn write_section(out: &mut Vec<u8>, s: &SectionEntry) {
    write_uvarint(out, s.offset as u64);
    write_uvarint(out, s.len as u64);
    write_uvarint(out, s.points as u64);
    match &s.aabb {
        Some(bb) => {
            out.push(1);
            for v in [bb.min.x, bb.min.y, bb.min.z, bb.max.x, bb.max.y, bb.max.z] {
                write_f64(out, v);
            }
        }
        None => out.push(0),
    }
}

fn read_count(r: &mut ByteReader<'_>, max: usize, what: &'static str) -> Result<usize, DbgcError> {
    let v = r.read_uvarint().map_err(DbgcError::from)?;
    if v > max as u64 {
        return Err(DbgcError::BadHeader(what));
    }
    Ok(v as usize)
}

fn read_section(
    r: &mut ByteReader<'_>,
    body_len: usize,
    budget: usize,
) -> Result<SectionEntry, DbgcError> {
    let offset = read_count(r, body_len, "index section offset")?;
    let len = read_count(r, body_len, "index section length")?;
    if offset + len > body_len {
        return Err(DbgcError::BadHeader("index section out of bounds"));
    }
    let points = read_count(r, budget, "index section point count")?;
    let aabb = match r.read_u8().map_err(DbgcError::from)? {
        0 => None,
        1 => {
            let mut v = [0.0f64; 6];
            for slot in &mut v {
                *slot = r.read_f64().map_err(DbgcError::from)?;
                if !slot.is_finite() {
                    return Err(DbgcError::BadHeader("non-finite index AABB"));
                }
            }
            let bb =
                Aabb { min: Point3::new(v[0], v[1], v[2]), max: Point3::new(v[3], v[4], v[5]) };
            if bb.min.x > bb.max.x || bb.min.y > bb.max.y || bb.min.z > bb.max.z {
                return Err(DbgcError::BadHeader("inverted index AABB"));
            }
            Some(bb)
        }
        _ => return Err(DbgcError::BadHeader("bad index AABB tag")),
    };
    Ok(SectionEntry { offset, len, points, aabb })
}

// ---------------------------------------------------------------------------
// Trailer framing
// ---------------------------------------------------------------------------

/// Append a directory payload to `stream` as a tail-anchored trailer.
pub fn append_index_trailer(stream: &mut Vec<u8>, payload: &[u8]) {
    stream.extend_from_slice(payload);
    stream.extend_from_slice(&crc32(payload).to_le_bytes());
    stream.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    stream.push(INDEX_VERSION);
    stream.extend_from_slice(&INDEX_MAGIC);
}

/// Outcome of splitting a byte string into stream body and index trailer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexTrailer<'a> {
    /// No structurally-framed trailer is present; the whole input is body.
    None,
    /// A trailer with a valid CRC; `payload` is the directory bytes.
    Valid {
        /// The stream body preceding the trailer.
        body: &'a [u8],
        /// The serialized directory payload.
        payload: &'a [u8],
    },
    /// The tail is framed like a trailer (magic + plausible length) but its
    /// CRC does not match: the payload is unusable, but the body boundary is
    /// still known, so callers can fall back to a full decode of `body`.
    Corrupt {
        /// The stream body preceding the corrupt trailer.
        body: &'a [u8],
    },
}

/// Split `bytes` into stream body and (optional) index trailer.
///
/// Structural framing first: the tail must end in [`INDEX_MAGIC`] and carry
/// a payload length that fits. Then the CRC decides between
/// [`IndexTrailer::Valid`] and [`IndexTrailer::Corrupt`]. Inputs without the
/// framing are [`IndexTrailer::None`] — including genuine index-less streams,
/// which therefore decode exactly as before.
pub fn split_index_trailer(bytes: &[u8]) -> IndexTrailer<'_> {
    let n = bytes.len();
    if n < TRAILER_FIXED || bytes[n - 4..] != INDEX_MAGIC {
        return IndexTrailer::None;
    }
    let payload_len = u32::from_le_bytes(bytes[n - 9..n - 5].try_into().expect("4 bytes")) as usize;
    let Some(body_len) = n.checked_sub(TRAILER_FIXED + payload_len) else {
        return IndexTrailer::None;
    };
    let body = &bytes[..body_len];
    let payload = &bytes[body_len..body_len + payload_len];
    let stored_crc = u32::from_le_bytes(bytes[n - 13..n - 9].try_into().expect("4 bytes"));
    if crc32(payload) == stored_crc {
        IndexTrailer::Valid { body, payload }
    } else {
        IndexTrailer::Corrupt { body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dir() -> SpatialDirectory {
        let bb = Aabb { min: Point3::new(-1.0, -2.0, -3.0), max: Point3::new(4.0, 5.0, 6.0) };
        SpatialDirectory {
            points: 1234,
            header_len: 44,
            dense: SectionEntry { offset: 44, len: 100, points: 1000, aabb: Some(bb) },
            dense_depth: 11,
            groups: vec![
                GroupEntry {
                    section: SectionEntry { offset: 144, len: 50, points: 200, aabb: Some(bb) },
                    r_min: 3.0,
                    r_max: 40.0,
                },
                GroupEntry {
                    section: SectionEntry { offset: 194, len: 10, points: 0, aabb: None },
                    r_min: f64::INFINITY,
                    r_max: 0.0,
                },
            ],
            outlier: SectionEntry { offset: 204, len: 30, points: 34, aabb: Some(bb) },
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn directory_roundtrips() {
        let dir = sample_dir();
        let payload = dir.serialize();
        let back = SpatialDirectory::parse(&payload, 234).unwrap();
        assert_eq!(back, dir);
    }

    #[test]
    fn trailer_roundtrips() {
        let dir = sample_dir();
        let mut stream = b"somebodybytes".to_vec();
        append_index_trailer(&mut stream, &dir.serialize());
        match split_index_trailer(&stream) {
            IndexTrailer::Valid { body, payload } => {
                assert_eq!(body, b"somebodybytes");
                assert_eq!(SpatialDirectory::parse(payload, 234).unwrap(), dir);
            }
            other => panic!("expected valid trailer, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_payload_detected_with_body_recovered() {
        let dir = sample_dir();
        let mut stream = b"body".to_vec();
        append_index_trailer(&mut stream, &dir.serialize());
        let payload_start = 4;
        stream[payload_start + 3] ^= 0x40;
        match split_index_trailer(&stream) {
            IndexTrailer::Corrupt { body } => assert_eq!(body, b"body"),
            other => panic!("expected corrupt trailer, got {other:?}"),
        }
    }

    #[test]
    fn plain_streams_split_to_none() {
        assert_eq!(split_index_trailer(b""), IndexTrailer::None);
        assert_eq!(split_index_trailer(b"DBGC plain stream bytes"), IndexTrailer::None);
        // Ends with the magic but has no room for a frame.
        assert_eq!(split_index_trailer(b"DIDX"), IndexTrailer::None);
        // Framed magic with an impossible length.
        let mut tail = vec![0u8; 9];
        tail[..4].copy_from_slice(&u32::MAX.to_le_bytes()); // crc slot
        tail[4..8].copy_from_slice(&u32::MAX.to_le_bytes()); // len slot
        tail[8] = INDEX_VERSION;
        tail.extend_from_slice(&INDEX_MAGIC);
        assert_eq!(split_index_trailer(&tail), IndexTrailer::None);
    }

    #[test]
    fn hostile_payloads_are_rejected_not_oom() {
        // Huge counts must fail the budget checks before any allocation.
        let mut payload = vec![INDEX_VERSION];
        dbgc_codec::varint::write_uvarint(&mut payload, u64::MAX >> 1);
        assert!(SpatialDirectory::parse(&payload, 1000).is_err());
        // Arbitrary bytes: error, never panic.
        for seed in 0u8..64 {
            let junk: Vec<u8> = (0..97).map(|i| seed.wrapping_mul(31).wrapping_add(i)).collect();
            let _ = SpatialDirectory::parse(&junk, 4096);
        }
    }

    #[test]
    fn out_of_bounds_section_rejected() {
        let mut dir = sample_dir();
        dir.dense.offset = 200;
        dir.dense.len = 200;
        let payload = dir.serialize();
        assert!(SpatialDirectory::parse(&payload, 234).is_err());
    }

    #[test]
    fn frame_aabb_unions_sections() {
        let dir = sample_dir();
        let bb = dir.frame_aabb().unwrap();
        assert_eq!(bb.min, Point3::new(-1.0, -2.0, -3.0));
        assert_eq!(bb.max, Point3::new(4.0, 5.0, 6.0));
    }
}
