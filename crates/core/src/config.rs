//! DBGC configuration.

use dbgc_codec::EntropyProfile;
use dbgc_geom::SensorMeta;

/// Which clustering algorithm classifies dense vs. sparse points (§3.2/§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusteringAlgorithm {
    /// The `O(n)` approximate cell-count clustering (§4.3). The paper
    /// integrates this into the final system for a 1.2× end-to-end speedup.
    #[default]
    Approximate,
    /// The exact cell-based clustering of §3.2.
    CellBased,
    /// Classic point-level DBSCAN (reference; slowest).
    Dbscan,
}

/// How dense points are selected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplitStrategy {
    /// Density-based clustering with `ε = k·q`, `minPts = ⌈πk³/6⌉`.
    Density(ClusteringAlgorithm),
    /// Take the given fraction of points nearest to the sensor as dense
    /// (the manual sweep of Fig. 10; `0.0` = all sparse, `1.0` = all octree).
    NearestFraction(f64),
}

impl Default for SplitStrategy {
    fn default() -> Self {
        SplitStrategy::Density(ClusteringAlgorithm::default())
    }
}

/// How outliers (sparse points on no polyline) are compressed (§3.6/Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutlierMode {
    /// 2D quadtree on (x, y) + delta-coded z channel (the paper's choice).
    #[default]
    Quadtree,
    /// A 3D octree over the outliers (Table 2's "Octree" alternative).
    Octree,
    /// Store raw `f32` coordinates (Table 2's "None": no compression).
    None,
}

/// Full DBGC configuration.
///
/// The defaults reproduce the paper's final system at the 2 cm error bound:
/// `k = 10`, 3 radial groups, `TH_r = 2 m`, approximate clustering,
/// spherical conversion and radial-distance-optimized delta encoding on.
#[derive(Debug, Clone, PartialEq)]
pub struct DbgcConfig {
    /// Per-axis Cartesian error bound `q_xyz` in metres.
    pub q_xyz: f64,
    /// Density neighbourhood scale: `ε = k · q_xyz`.
    pub k: u32,
    /// Override for `minPts` (`None` = the paper's `⌈πk³/6⌉`).
    pub min_pts_override: Option<usize>,
    /// Dense/sparse split strategy.
    pub split: SplitStrategy,
    /// Number of radial groups for sparse points (1 disables grouping).
    pub groups: usize,
    /// Minimum polyline length; shorter polylines become outliers.
    pub min_polyline_len: usize,
    /// Radial-distance threshold `TH_r` in metres (§3.5 step 8).
    pub th_r: f64,
    /// Compress sparse coordinates in spherical space (−Conversion ablation
    /// sets this to false and works on Cartesian channels).
    pub spherical_conversion: bool,
    /// Use radial-distance-optimized delta encoding for the third channel
    /// (−Radial ablation sets this to false → plain per-polyline delta).
    pub radial_optimized: bool,
    /// Outlier compression scheme.
    pub outlier_mode: OutlierMode,
    /// Sensor metadata supplying `u_θ` and `u_φ` for polyline organization.
    pub sensor: SensorMeta,
    /// Worker threads for the intra-frame parallel stages (requires the
    /// `parallel` feature): `0` = use the process-wide pool at its current
    /// size (hardware threads, or `DBGC_THREADS`); `1` = run every stage
    /// inline on the calling thread; `n > 1` = grow the shared pool to at
    /// least `n` threads. The bitstream is byte-identical for every setting.
    pub threads: usize,
    /// Entropy profile for the range-coded substreams: how many interleaved
    /// interval states the coders use (same probabilities, split interval
    /// state — see `dbgc_codec::dual` and `dbgc_codec::wide`). `Narrow` (the
    /// default) keeps the version-1 format byte-identical; `Dual` writes
    /// stream version 2 (two-lane dense occupancy); `Wide` writes stream
    /// version 3 (four-lane occupancy *and* four-lane sparse/radial frames).
    /// Only decoders aware of the respective version accept those streams.
    pub entropy_profile: EntropyProfile,
    /// Emit a spatial directory (per-section AABBs, point counts and byte
    /// offsets) as a CRC-guarded trailer after the stream body, enabling
    /// archive queries with partial decode (see `dbgc-store`). Decoders
    /// unaware of the trailer strip it before the sequential walk, so the
    /// decoded cloud is identical either way. The default (false) leaves the
    /// stream bytes exactly as before.
    pub spatial_index: bool,
}

impl Default for DbgcConfig {
    fn default() -> Self {
        DbgcConfig::with_error_bound(0.02)
    }
}

impl DbgcConfig {
    /// Paper defaults at the given error bound.
    pub fn with_error_bound(q_xyz: f64) -> DbgcConfig {
        DbgcConfig {
            q_xyz,
            k: 10,
            min_pts_override: None,
            split: SplitStrategy::default(),
            groups: 3,
            min_polyline_len: 3,
            th_r: 2.0,
            spherical_conversion: true,
            radial_optimized: true,
            outlier_mode: OutlierMode::Quadtree,
            sensor: SensorMeta::velodyne_hdl64e(),
            threads: 0,
            entropy_profile: EntropyProfile::Narrow,
            spatial_index: false,
        }
    }

    /// Builder-style two-lane toggle: shorthand for
    /// [`with_entropy_profile`](DbgcConfig::with_entropy_profile) with
    /// `Dual` (or back to `Narrow`).
    pub fn with_dense_dual_lane(self, on: bool) -> Self {
        self.with_entropy_profile(if on { EntropyProfile::Dual } else { EntropyProfile::Narrow })
    }

    /// Builder-style override of
    /// [`entropy_profile`](DbgcConfig::entropy_profile).
    pub fn with_entropy_profile(mut self, profile: EntropyProfile) -> Self {
        self.entropy_profile = profile;
        self
    }

    /// Builder-style override of [`threads`](DbgcConfig::threads).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style override of
    /// [`spatial_index`](DbgcConfig::spatial_index).
    pub fn with_spatial_index(mut self, on: bool) -> Self {
        self.spatial_index = on;
        self
    }

    /// Clustering parameters implied by this configuration.
    ///
    /// Uses the surface-calibrated `minPts = ⌈πk²/12⌉` (see
    /// [`dbgc_clustering::ClusterParams::surface_default`]) — the paper's
    /// volume formula classifies nothing as dense on real scan geometry.
    pub fn cluster_params(&self) -> dbgc_clustering::ClusterParams {
        let mut p = dbgc_clustering::ClusterParams::surface_default(self.q_xyz, self.k);
        if let Some(m) = self.min_pts_override {
            p.min_pts = m;
        }
        p
    }

    /// Validate invariants; called by the compressor.
    pub fn validate(&self) -> Result<(), String> {
        // NaN must fail too, hence the partial_cmp form.
        if self.q_xyz.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(format!("q_xyz must be positive, got {}", self.q_xyz));
        }
        if self.groups == 0 {
            return Err("groups must be >= 1".into());
        }
        if self.min_polyline_len == 0 {
            return Err("min_polyline_len must be >= 1".into());
        }
        if self.radial_optimized && !self.spherical_conversion {
            return Err("radial-optimized encoding requires spherical conversion (no radial \
                 distance channel in Cartesian mode)"
                .into());
        }
        if let SplitStrategy::NearestFraction(f) = self.split {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("nearest fraction must be in [0, 1], got {f}"));
            }
        }
        Ok(())
    }

    /// The −Radial ablation of Fig. 11.
    pub fn without_radial(mut self) -> Self {
        self.radial_optimized = false;
        self
    }

    /// The −Group ablation of Fig. 11.
    pub fn without_grouping(mut self) -> Self {
        self.groups = 1;
        self
    }

    /// The −Conversion ablation of Fig. 11.
    pub fn without_conversion(mut self) -> Self {
        self.spherical_conversion = false;
        self.radial_optimized = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        DbgcConfig::default().validate().unwrap();
        assert_eq!(DbgcConfig::default().cluster_params().min_pts, 27);
    }

    #[test]
    fn ablations_are_valid() {
        DbgcConfig::default().without_radial().validate().unwrap();
        DbgcConfig::default().without_grouping().validate().unwrap();
        DbgcConfig::default().without_conversion().validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = DbgcConfig { q_xyz: 0.0, ..DbgcConfig::default() };
        assert!(c.validate().is_err());

        let c = DbgcConfig { groups: 0, ..DbgcConfig::default() };
        assert!(c.validate().is_err());

        // Radial still on:
        let c = DbgcConfig { spherical_conversion: false, ..DbgcConfig::default() };
        assert!(c.validate().is_err());

        let c = DbgcConfig { split: SplitStrategy::NearestFraction(1.5), ..DbgcConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn entropy_profile_builders() {
        let c = DbgcConfig::default();
        assert_eq!(c.entropy_profile, EntropyProfile::Narrow);
        assert_eq!(c.clone().with_dense_dual_lane(true).entropy_profile, EntropyProfile::Dual);
        assert_eq!(
            c.clone().with_dense_dual_lane(true).with_dense_dual_lane(false).entropy_profile,
            EntropyProfile::Narrow
        );
        let c = c.with_entropy_profile(EntropyProfile::Wide);
        assert_eq!(c.entropy_profile, EntropyProfile::Wide);
        c.validate().unwrap();
    }

    #[test]
    fn min_pts_override() {
        let c = DbgcConfig { min_pts_override: Some(42), ..DbgcConfig::default() };
        assert_eq!(c.cluster_params().min_pts, 42);
    }
}
