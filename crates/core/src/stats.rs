//! Compression statistics and timing breakdown (paper Fig. 13).

use std::time::Duration;

/// Sizes of the sections of the final bitstream `B` (Fig. 8).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SectionSizes {
    /// Stream magic, error bound, sensor spacings, flags, counts.
    pub header: usize,
    /// `B_dense`: the octree section.
    pub dense: usize,
    /// All sparse group sections (`r_max` + coordinate frames).
    pub sparse: usize,
    /// `B_outlier`: the outlier section.
    pub outlier: usize,
    /// The spatial-index trailer (0 unless
    /// [`spatial_index`](crate::DbgcConfig::spatial_index) is on).
    pub index: usize,
}

impl SectionSizes {
    /// `|B|`: total stream size in bytes.
    pub fn total(&self) -> usize {
        self.header + self.dense + self.sparse + self.outlier + self.index
    }
}

/// Timing of the compression building blocks, labelled as in Fig. 13:
/// DEN (clustering), OCT (octree), COR (coordinate conversion),
/// ORG (point organization), SPA (sparse coordinate compression),
/// OUT (outlier compression).
///
/// All durations are **wall-clock**. Under intra-frame parallelism
/// (`threads != 1`) the per-group ORG/SPA work overlaps across pool
/// workers; `org` and `spa` split the fan-out's wall-clock interval pro
/// rata by measured worker time, so `total()` stays an honest wall-clock
/// figure instead of a summed-CPU one that can exceed the frame latency.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingBreakdown {
    /// Density-based clustering.
    pub den: Duration,
    /// Octree compression of dense points.
    pub oct: Duration,
    /// Cartesian → spherical conversion.
    pub cor: Duration,
    /// Polyline organization (Algorithm 1).
    pub org: Duration,
    /// Sparse coordinate compression (steps 1-9).
    pub spa: Duration,
    /// Outlier compression.
    pub out: Duration,
}

impl TimingBreakdown {
    /// Sum of all compression phases.
    pub fn total(&self) -> Duration {
        self.den + self.oct + self.cor + self.org + self.spa + self.out
    }

    /// `(label, fraction_of_total)` pairs, for the Fig. 13 report.
    pub fn fractions(&self) -> [(&'static str, f64); 6] {
        let t = self.total().as_secs_f64().max(1e-12);
        [
            ("DEN", self.den.as_secs_f64() / t),
            ("OCT", self.oct.as_secs_f64() / t),
            ("COR", self.cor.as_secs_f64() / t),
            ("ORG", self.org.as_secs_f64() / t),
            ("SPA", self.spa.as_secs_f64() / t),
            ("OUT", self.out.as_secs_f64() / t),
        ]
    }
}

/// Everything the compressor reports besides the bitstream.
#[derive(Debug, Clone, Default)]
pub struct CompressionStats {
    /// `|PC|`: input point count.
    pub total_points: usize,
    /// Points routed to the octree.
    pub dense_points: usize,
    /// Points on polylines.
    pub sparse_points: usize,
    /// Points on no polyline.
    pub outlier_points: usize,
    /// Number of polylines across all groups.
    pub polylines: usize,
    /// Byte sizes of the stream sections.
    pub sections: SectionSizes,
    /// Per-phase compression timing.
    pub timing: TimingBreakdown,
}

impl CompressionStats {
    /// Compression ratio against 12-byte (3 × f32) raw points.
    pub fn compression_ratio(&self) -> f64 {
        let raw = self.total_points * 12;
        if self.sections.total() == 0 {
            0.0
        } else {
            raw as f64 / self.sections.total() as f64
        }
    }

    /// Bits per input point in the compressed stream.
    pub fn bits_per_point(&self) -> f64 {
        if self.total_points == 0 {
            0.0
        } else {
            self.sections.total() as f64 * 8.0 / self.total_points as f64
        }
    }

    /// Fraction of points classified dense.
    pub fn dense_fraction(&self) -> f64 {
        if self.total_points == 0 {
            0.0
        } else {
            self.dense_points as f64 / self.total_points as f64
        }
    }

    /// Fraction of points that ended up as outliers.
    pub fn outlier_fraction(&self) -> f64 {
        if self.total_points == 0 {
            0.0
        } else {
            self.outlier_points as f64 / self.total_points as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_math() {
        let stats = CompressionStats {
            total_points: 1000,
            sections: SectionSizes { header: 20, dense: 400, sparse: 500, outlier: 80, index: 0 },
            ..Default::default()
        };
        assert!((stats.compression_ratio() - 12.0).abs() < 1e-12);
        assert!((stats.bits_per_point() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let stats = CompressionStats::default();
        assert_eq!(stats.compression_ratio(), 0.0);
        assert_eq!(stats.bits_per_point(), 0.0);
        assert_eq!(stats.dense_fraction(), 0.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let timing = TimingBreakdown {
            den: Duration::from_millis(30),
            oct: Duration::from_millis(10),
            cor: Duration::from_millis(5),
            org: Duration::from_millis(25),
            spa: Duration::from_millis(50),
            out: Duration::from_millis(5),
        };
        let sum: f64 = timing.fractions().iter().map(|&(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
