//! The DBGC decompressor (paper §3.7, Fig. 2 server side).
//!
//! Splits the bitstream into its three sections, decodes each with the
//! matching decompressor, converts polyline points back from spherical to
//! Cartesian coordinates, and concatenates:
//! `[dense | group 0 polylines | … | group N−1 polylines | outliers]`.

use std::time::{Duration, Instant};

use dbgc_codec::varint::ByteReader;
use dbgc_geom::PointCloud;

use crate::index::{split_index_trailer, IndexTrailer};
use crate::layout::{
    group_codec_cfg, parse_header, push_dequantized, read_dense, read_group_r_max,
};
use crate::outlier::decode_outliers;
use crate::sparse::codec::decode_group_with_limit;
use crate::DbgcError;

/// Decompression timing, mirroring the compression breakdown of Fig. 13.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecompressStats {
    /// Octree decoding.
    pub oct: Duration,
    /// Sparse coordinate decompression (frames + radial reconstruction).
    pub spa: Duration,
    /// Spherical → Cartesian conversion.
    pub cor: Duration,
    /// Outlier decoding.
    pub out: Duration,
}

impl DecompressStats {
    /// Sum of all decompression phases.
    pub fn total(&self) -> Duration {
        self.oct + self.spa + self.cor + self.out
    }
}

/// Optional metrics sink (always `None` with the `metrics` feature off).
#[cfg(feature = "metrics")]
type MetricsOpt<'a> = Option<&'a dbgc_metrics::Collector>;
#[cfg(not(feature = "metrics"))]
type MetricsOpt<'a> = Option<&'a std::convert::Infallible>;

/// Decompress a DBGC bitstream into a point cloud.
pub fn decompress(bytes: &[u8]) -> Result<(PointCloud, DecompressStats), DbgcError> {
    decompress_impl(bytes, None)
}

/// [`decompress`], recording observability data into `collector`: a
/// `decompress` span with `oct`/`spa`/`cor`/`out` stage children (one
/// `spa`/`cor` pair per radial group) and frame/point/byte counters. The
/// decoded cloud is identical to the uninstrumented path.
#[cfg(feature = "metrics")]
pub fn decompress_with_metrics(
    bytes: &[u8],
    collector: &dbgc_metrics::Collector,
) -> Result<(PointCloud, DecompressStats), DbgcError> {
    decompress_impl(bytes, Some(collector))
}

fn decompress_impl(
    bytes: &[u8],
    m: MetricsOpt,
) -> Result<(PointCloud, DecompressStats), DbgcError> {
    #[cfg(not(feature = "metrics"))]
    let _ = m;
    #[cfg(feature = "metrics")]
    let root = m.map(|c| c.span("decompress"));
    // A CRC-valid index trailer is metadata for archive queries, not point
    // data: strip it before the sequential walk so index-aware streams
    // decode to exactly the cloud their index-less body encodes. Corrupt or
    // absent trailers leave the input untouched (a genuinely index-less
    // stream must not lose tail bytes to a magic coincidence).
    let body = match split_index_trailer(bytes) {
        IndexTrailer::Valid { body, .. } => body,
        _ => bytes,
    };
    let h = parse_header(body)?;
    let mut r = ByteReader::new(&body[h.header_len..]);
    let declared_points = h.declared_points;

    let mut stats = DecompressStats::default();
    // Reservation is clamped; growth beyond it is paced by actual decode.
    let mut cloud = PointCloud::with_capacity(declared_points.min(1 << 20));

    // ---- dense section ----------------------------------------------------
    #[cfg(feature = "metrics")]
    let stage = root.as_ref().map(|s| s.child("oct"));
    let t = Instant::now();
    let dense = read_dense(&mut r, &h, declared_points)?;
    for p in dense.points {
        cloud.push(p);
    }
    stats.oct = t.elapsed();
    #[cfg(feature = "metrics")]
    drop(stage);

    // ---- sparse groups ------------------------------------------------------
    for _ in 0..h.n_groups {
        let r_max = read_group_r_max(&mut r)?;
        #[cfg(feature = "metrics")]
        let stage = root.as_ref().map(|s| s.child("spa"));
        let t = Instant::now();
        let (codec_cfg, sq) = group_codec_cfg(&h, r_max);
        // Per-group budget: whatever the frame has left, so a group whose
        // declared lengths exceed the remainder fails before materializing.
        let lines = decode_group_with_limit(&mut r, &codec_cfg, declared_points - cloud.len())?;
        stats.spa += t.elapsed();
        #[cfg(feature = "metrics")]
        drop(stage);

        #[cfg(feature = "metrics")]
        let stage = root.as_ref().map(|s| s.child("cor"));
        let t = Instant::now();
        push_dequantized(&lines, sq.as_ref(), h.q_xyz, &mut cloud);
        stats.cor += t.elapsed();
        #[cfg(feature = "metrics")]
        drop(stage);
    }

    // ---- outliers --------------------------------------------------------------
    #[cfg(feature = "metrics")]
    let stage = root.as_ref().map(|s| s.child("out"));
    let t = Instant::now();
    for p in decode_outliers(&mut r, h.q_xyz, declared_points - cloud.len())? {
        cloud.push(p);
    }
    stats.out = t.elapsed();
    #[cfg(feature = "metrics")]
    drop(stage);

    if cloud.len() != declared_points {
        return Err(DbgcError::BadHeader("decoded point count mismatch"));
    }
    if !r.is_empty() {
        return Err(DbgcError::BadHeader("trailing bytes after stream"));
    }
    #[cfg(feature = "metrics")]
    if let Some(c) = m {
        c.incr("decompress.frames", 1);
        c.incr("decompress.points_out", cloud.len() as u64);
        c.record("decompress.bytes_per_frame", bytes.len() as u64);
    }
    Ok((cloud, stats))
}

/// Structural information about a DBGC stream, read from headers and frame
/// lengths without decoding any point data.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamInfo {
    /// Error bound `q_xyz` the stream was encoded with.
    pub q_xyz: f64,
    /// Whether sparse channels are spherical (vs the −Conversion ablation).
    pub spherical: bool,
    /// Whether the radial-optimized encoding was used.
    pub radial: bool,
    /// Number of radial groups.
    pub groups: usize,
    /// Total point count.
    pub points: usize,
    /// Size of the dense (octree) section in bytes, including its length tag.
    pub dense_bytes: usize,
    /// Combined size of the sparse group sections in bytes.
    pub sparse_bytes: usize,
    /// Size of the outlier section in bytes.
    pub outlier_bytes: usize,
    /// Size of the (CRC-valid) spatial-index trailer in bytes, including its
    /// framing; 0 for index-less streams.
    pub index_bytes: usize,
    /// Total stream size.
    pub total_bytes: usize,
}

impl StreamInfo {
    /// Compression ratio against 12-byte raw points.
    pub fn compression_ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.points as f64 * 12.0 / self.total_bytes as f64
        }
    }
}

/// Inspect a DBGC stream without decompressing it.
///
/// Walks the section framing only; cheap (microseconds) even for large
/// frames. Fails on the same malformed headers [`decompress`] would reject.
pub fn inspect(bytes: &[u8]) -> Result<StreamInfo, DbgcError> {
    let body = match split_index_trailer(bytes) {
        IndexTrailer::Valid { body, .. } => body,
        _ => bytes,
    };
    let h = parse_header(body)?;
    let spans = crate::layout::section_spans(body, &h)?;
    Ok(StreamInfo {
        q_xyz: h.q_xyz,
        spherical: h.spherical,
        radial: h.radial,
        groups: h.n_groups,
        points: h.declared_points,
        dense_bytes: spans.dense.len(),
        sparse_bytes: spans.groups.iter().map(|g| g.len()).sum(),
        outlier_bytes: spans.outlier.len(),
        index_bytes: bytes.len() - body.len(),
        total_bytes: bytes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dbgc;
    use dbgc_geom::Point3;

    fn ring_cloud(n: usize) -> PointCloud {
        (0..n)
            .map(|i| {
                let th = i as f64 / n as f64 * std::f64::consts::TAU;
                Point3::new(18.0 * th.cos(), 18.0 * th.sin(), -1.7)
            })
            .collect()
    }

    #[test]
    fn inspect_matches_compressor_stats() {
        let cloud = ring_cloud(4000);
        let frame = Dbgc::with_error_bound(0.02).compress(&cloud).unwrap();
        let info = inspect(&frame.bytes).unwrap();
        assert_eq!(info.points, cloud.len());
        assert_eq!(info.total_bytes, frame.bytes.len());
        assert_eq!(info.dense_bytes, frame.stats.sections.dense);
        assert_eq!(info.sparse_bytes, frame.stats.sections.sparse);
        assert_eq!(info.outlier_bytes, frame.stats.sections.outlier);
        assert!(info.spherical && info.radial);
        assert_eq!(info.groups, 3);
        assert!((info.q_xyz - 0.02).abs() < 1e-15);
        assert!((info.compression_ratio() - frame.compression_ratio()).abs() < 1e-9);
    }

    #[test]
    fn dual_lane_stream_roundtrips_under_version_2() {
        let cloud = ring_cloud(3000);
        let cfg = crate::DbgcConfig::with_error_bound(0.02).with_dense_dual_lane(true);
        let frame = Dbgc::new(cfg.clone()).compress(&cloud).unwrap();
        assert_eq!(frame.bytes[4], 2, "dual-lane frames carry stream version 2");
        let (decoded, _) = decompress(&frame.bytes).unwrap();
        crate::verify::verify_roundtrip(&cloud, &decoded, &frame, cfg.q_xyz).unwrap();
        // Everything outside the dense section is shared with version 1, so
        // the size difference is bounded by the dual frame overhead.
        let v1 = Dbgc::with_error_bound(0.02).compress(&cloud).unwrap();
        assert_eq!(v1.bytes[4], 1);
        assert!(frame.bytes.len() <= v1.bytes.len() + 32);
        assert!(inspect(&frame.bytes).is_ok());
    }

    #[test]
    fn wide_stream_roundtrips_under_version_3() {
        let cloud = ring_cloud(3000);
        let cfg = crate::DbgcConfig::with_error_bound(0.02)
            .with_entropy_profile(crate::EntropyProfile::Wide);
        let frame = Dbgc::new(cfg.clone()).compress(&cloud).unwrap();
        assert_eq!(frame.bytes[4], 3, "wide frames carry stream version 3");
        let (decoded, _) = decompress(&frame.bytes).unwrap();
        crate::verify::verify_roundtrip(&cloud, &decoded, &frame, cfg.q_xyz).unwrap();
        // The models see the same symbols, so the size gap is bounded by the
        // per-rc-frame lane overhead (dense occupancy + sparse frames).
        let v1 = Dbgc::with_error_bound(0.02).compress(&cloud).unwrap();
        assert_eq!(v1.bytes[4], 1);
        let rc_frames = 1 + 3 * 6; // occupancy + 6 rc frames per radial group
        assert!(frame.bytes.len() <= v1.bytes.len() + rc_frames * 32);
        assert!(inspect(&frame.bytes).is_ok());
        // Wide decode reconstructs the identical cloud to narrow decode.
        let (narrow_decoded, _) = decompress(&v1.bytes).unwrap();
        assert_eq!(decoded.len(), narrow_decoded.len());
    }

    #[test]
    fn wide_indexed_stream_partial_layout_agrees() {
        // The wide profile composes with the spatial index: the trailer
        // wraps a version-3 body and both decode paths agree.
        let cloud = ring_cloud(2500);
        let cfg = crate::DbgcConfig::with_error_bound(0.02)
            .with_entropy_profile(crate::EntropyProfile::Wide)
            .with_spatial_index(true);
        let frame = Dbgc::new(cfg).compress(&cloud).unwrap();
        let (decoded, _) = decompress(&frame.bytes).unwrap();
        assert_eq!(decoded.len(), cloud.len());
        let info = inspect(&frame.bytes).unwrap();
        assert!(info.index_bytes > 0);
    }

    #[test]
    fn inspect_ablated_stream() {
        let cloud = ring_cloud(1000);
        let cfg = crate::DbgcConfig::with_error_bound(0.05).without_conversion();
        let frame = Dbgc::new(cfg).compress(&cloud).unwrap();
        let info = inspect(&frame.bytes).unwrap();
        assert!(!info.spherical && !info.radial);
    }

    #[test]
    fn inspect_is_cheap_relative_to_decode() {
        // Structural walk only: no points are materialized, so inspecting a
        // truncated-but-framed stream succeeds while decode would fail on
        // content. Sanity: inspect never reports more bytes than given.
        let cloud = ring_cloud(2000);
        let frame = Dbgc::with_error_bound(0.02).compress(&cloud).unwrap();
        let info = inspect(&frame.bytes).unwrap();
        assert!(info.dense_bytes + info.sparse_bytes + info.outlier_bytes <= info.total_bytes);
    }

    #[test]
    fn inspect_single_group_stream() {
        let cloud = ring_cloud(1500);
        let cfg = crate::DbgcConfig::with_error_bound(0.02).without_grouping();
        let frame = Dbgc::new(cfg).compress(&cloud).unwrap();
        let info = inspect(&frame.bytes).unwrap();
        assert_eq!(info.groups, 1);
        assert!(info.radial);
    }

    #[test]
    fn inspect_rejects_garbage() {
        assert!(inspect(b"not a dbgc stream").is_err());
        assert!(inspect(&[]).is_err());
    }

    #[test]
    fn indexed_stream_decodes_identically() {
        let cloud = ring_cloud(4000);
        let plain = Dbgc::with_error_bound(0.02).compress(&cloud).unwrap();
        let cfg = crate::DbgcConfig::with_error_bound(0.02).with_spatial_index(true);
        let indexed = Dbgc::new(cfg).compress(&cloud).unwrap();
        // The body is the plain stream byte-for-byte; only the trailer is new.
        assert!(indexed.bytes.len() > plain.bytes.len());
        assert_eq!(&indexed.bytes[..plain.bytes.len()], &plain.bytes[..]);
        assert_eq!(indexed.stats.sections.index, indexed.bytes.len() - plain.bytes.len());
        let (a, _) = decompress(&plain.bytes).unwrap();
        let (b, _) = decompress(&indexed.bytes).unwrap();
        assert_eq!(a.points(), b.points());
        // The carried directory matches what the trailer parses back to.
        let dir = indexed.directory.expect("directory present");
        match crate::index::split_index_trailer(&indexed.bytes) {
            crate::index::IndexTrailer::Valid { body, payload } => {
                let parsed = crate::SpatialDirectory::parse(payload, body.len()).unwrap();
                assert_eq!(parsed, dir);
                assert_eq!(body, &plain.bytes[..]);
            }
            other => panic!("expected valid trailer, got {other:?}"),
        }
    }

    #[test]
    fn directory_bounds_every_decoded_point() {
        let cloud = ring_cloud(5000);
        let cfg = crate::DbgcConfig::with_error_bound(0.02).with_spatial_index(true);
        let frame = Dbgc::new(cfg).compress(&cloud).unwrap();
        let dir = frame.directory.as_ref().unwrap();
        let (dec, _) = decompress(&frame.bytes).unwrap();
        let frame_bb = dir.frame_aabb().unwrap();
        for &p in dec.points() {
            assert!(frame_bb.contains(p), "decoded point {p:?} outside frame AABB");
        }
        assert_eq!(dir.points, dec.len());
        let section_sum = dir.dense.points
            + dir.groups.iter().map(|g| g.section.points).sum::<usize>()
            + dir.outlier.points;
        assert_eq!(section_sum, dec.len());
    }

    #[test]
    fn inspect_reports_index_bytes() {
        let cloud = ring_cloud(2000);
        let cfg = crate::DbgcConfig::with_error_bound(0.02).with_spatial_index(true);
        let frame = Dbgc::new(cfg).compress(&cloud).unwrap();
        let info = inspect(&frame.bytes).unwrap();
        assert_eq!(info.index_bytes, frame.stats.sections.index);
        assert!(info.index_bytes > 0);
        assert_eq!(
            info.dense_bytes
                + info.sparse_bytes
                + info.outlier_bytes
                + info.index_bytes
                + frame.stats.sections.header,
            info.total_bytes
        );
    }

    #[test]
    fn corrupt_index_trailer_fails_strict_decode() {
        // Core is strict: a structurally-framed trailer with a bad CRC is
        // not silently skipped (the lenient fallback lives in dbgc-store).
        let cloud = ring_cloud(1000);
        let cfg = crate::DbgcConfig::with_error_bound(0.02).with_spatial_index(true);
        let frame = Dbgc::new(cfg).compress(&cloud).unwrap();
        let mut bytes = frame.bytes.clone();
        let payload_start = bytes.len() - frame.stats.sections.index;
        bytes[payload_start + 2] ^= 0x10;
        assert!(decompress(&bytes).is_err());
    }
}
