//! The DBGC decompressor (paper §3.7, Fig. 2 server side).
//!
//! Splits the bitstream into its three sections, decodes each with the
//! matching decompressor, converts polyline points back from spherical to
//! Cartesian coordinates, and concatenates:
//! `[dense | group 0 polylines | … | group N−1 polylines | outliers]`.

use std::time::{Duration, Instant};

use dbgc_codec::varint::ByteReader;
use dbgc_geom::quant::SphericalQuant;
use dbgc_geom::{Point3, PointCloud};
use dbgc_octree::OctreeCodec;

use crate::outlier::decode_outliers;
use crate::pipeline::{FLAG_RADIAL, FLAG_SPHERICAL, MAGIC, VERSION, VERSION_DUAL};
use crate::sparse::codec::{decode_group, GroupCodecConfig};
use crate::DbgcError;

/// Decompression timing, mirroring the compression breakdown of Fig. 13.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecompressStats {
    /// Octree decoding.
    pub oct: Duration,
    /// Sparse coordinate decompression (frames + radial reconstruction).
    pub spa: Duration,
    /// Spherical → Cartesian conversion.
    pub cor: Duration,
    /// Outlier decoding.
    pub out: Duration,
}

impl DecompressStats {
    /// Sum of all decompression phases.
    pub fn total(&self) -> Duration {
        self.oct + self.spa + self.cor + self.out
    }
}

/// Optional metrics sink (always `None` with the `metrics` feature off).
#[cfg(feature = "metrics")]
type MetricsOpt<'a> = Option<&'a dbgc_metrics::Collector>;
#[cfg(not(feature = "metrics"))]
type MetricsOpt<'a> = Option<&'a std::convert::Infallible>;

/// Decompress a DBGC bitstream into a point cloud.
pub fn decompress(bytes: &[u8]) -> Result<(PointCloud, DecompressStats), DbgcError> {
    decompress_impl(bytes, None)
}

/// [`decompress`], recording observability data into `collector`: a
/// `decompress` span with `oct`/`spa`/`cor`/`out` stage children (one
/// `spa`/`cor` pair per radial group) and frame/point/byte counters. The
/// decoded cloud is identical to the uninstrumented path.
#[cfg(feature = "metrics")]
pub fn decompress_with_metrics(
    bytes: &[u8],
    collector: &dbgc_metrics::Collector,
) -> Result<(PointCloud, DecompressStats), DbgcError> {
    decompress_impl(bytes, Some(collector))
}

fn decompress_impl(
    bytes: &[u8],
    m: MetricsOpt,
) -> Result<(PointCloud, DecompressStats), DbgcError> {
    #[cfg(not(feature = "metrics"))]
    let _ = m;
    #[cfg(feature = "metrics")]
    let root = m.map(|c| c.span("decompress"));
    let mut r = ByteReader::new(bytes);
    let magic = r.read_slice(4).map_err(|_| DbgcError::BadHeader("missing magic"))?;
    if magic != MAGIC {
        return Err(DbgcError::BadHeader("wrong magic"));
    }
    let version = r.read_u8().map_err(|_| DbgcError::BadHeader("missing version"))?;
    if version != VERSION && version != VERSION_DUAL {
        return Err(DbgcError::BadHeader("unsupported version"));
    }
    let dual_lane = version == VERSION_DUAL;
    let q_xyz = r.read_f64().map_err(DbgcError::from)?;
    // The upper cap (a billion-kilometre error bound) keeps every derived
    // quantization step small enough that dequantized coordinates stay
    // finite for any i64 quantized value.
    if q_xyz.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || q_xyz > 1e12 {
        return Err(DbgcError::BadHeader("invalid error bound"));
    }
    let _u_theta = r.read_f64().map_err(DbgcError::from)?;
    let u_phi = r.read_f64().map_err(DbgcError::from)?;
    let th_r = r.read_f64().map_err(DbgcError::from)?;
    let flags = r.read_u8().map_err(DbgcError::from)?;
    let spherical = flags & FLAG_SPHERICAL != 0;
    let radial = flags & FLAG_RADIAL != 0;
    let n_groups = r.read_uvarint().map_err(DbgcError::from)? as usize;
    let declared_points = r.read_uvarint().map_err(DbgcError::from)? as usize;
    // Every group carries at least its 8-byte r_max, and every point costs
    // coded payload, so both counts are bounded by the input size. The
    // absolute point ceiling is far above any real LiDAR frame.
    if n_groups > r.remaining() / 8 || declared_points > point_budget(bytes.len()) {
        return Err(DbgcError::BadHeader("implausible header counts"));
    }

    let mut stats = DecompressStats::default();
    // Reservation is clamped; growth beyond it is paced by actual decode.
    let mut cloud = PointCloud::with_capacity(declared_points.min(1 << 20));

    // ---- dense section ----------------------------------------------------
    #[cfg(feature = "metrics")]
    let stage = root.as_ref().map(|s| s.child("oct"));
    let t = Instant::now();
    let dense_len = r.read_uvarint().map_err(DbgcError::from)? as usize;
    let dense_bytes = r.read_slice(dense_len).map_err(DbgcError::from)?;
    let dense = OctreeCodec::baseline()
        .with_dual_lane(dual_lane)
        .decode_with_limit(dense_bytes, declared_points)?;
    for p in dense.points {
        cloud.push(p);
    }
    stats.oct = t.elapsed();
    #[cfg(feature = "metrics")]
    drop(stage);

    // ---- sparse groups ------------------------------------------------------
    for _ in 0..n_groups {
        let r_max = r.read_f64().map_err(DbgcError::from)?;
        if !r_max.is_finite() || !(0.0..=1e12).contains(&r_max) {
            return Err(DbgcError::BadHeader("invalid group r_max"));
        }
        #[cfg(feature = "metrics")]
        let stage = root.as_ref().map(|s| s.child("spa"));
        let t = Instant::now();
        let (codec_cfg, sq) = if spherical {
            let sq = SphericalQuant::from_error_bound(q_xyz, r_max);
            (
                GroupCodecConfig {
                    radial,
                    th_phi: (2.0 * u_phi / sq.angle_step()).round() as i64,
                    th_r: (th_r / sq.r_step()).round() as i64,
                },
                Some(sq),
            )
        } else {
            (GroupCodecConfig { radial: false, th_phi: 1, th_r: 1 }, None)
        };
        let lines = decode_group(&mut r, &codec_cfg)?;
        stats.spa += t.elapsed();
        #[cfg(feature = "metrics")]
        drop(stage);

        #[cfg(feature = "metrics")]
        let stage = root.as_ref().map(|s| s.child("cor"));
        let t = Instant::now();
        match sq {
            Some(sq) => {
                for line in &lines {
                    for &p in line {
                        cloud.push(sq.dequantize(p).to_cartesian());
                    }
                }
            }
            None => {
                let step = 2.0 * q_xyz;
                for line in &lines {
                    for &p in line {
                        cloud.push(Point3::new(
                            p[0] as f64 * step,
                            p[1] as f64 * step,
                            p[2] as f64 * step,
                        ));
                    }
                }
            }
        }
        stats.cor += t.elapsed();
        #[cfg(feature = "metrics")]
        drop(stage);
        if cloud.len() > declared_points {
            return Err(DbgcError::BadHeader("decoded point count mismatch"));
        }
    }

    // ---- outliers --------------------------------------------------------------
    #[cfg(feature = "metrics")]
    let stage = root.as_ref().map(|s| s.child("out"));
    let t = Instant::now();
    for p in decode_outliers(&mut r, q_xyz, declared_points - cloud.len())? {
        cloud.push(p);
    }
    stats.out = t.elapsed();
    #[cfg(feature = "metrics")]
    drop(stage);

    if cloud.len() != declared_points {
        return Err(DbgcError::BadHeader("decoded point count mismatch"));
    }
    if !r.is_empty() {
        return Err(DbgcError::BadHeader("trailing bytes after stream"));
    }
    #[cfg(feature = "metrics")]
    if let Some(c) = m {
        c.incr("decompress.frames", 1);
        c.incr("decompress.points_out", cloud.len() as u64);
        c.record("decompress.bytes_per_frame", bytes.len() as u64);
    }
    Ok((cloud, stats))
}

/// Decoded-point budget for a stream of `len` bytes.
///
/// Every coded point costs payload (range-coded symbols are bounded by
/// [`dbgc_codec::intseq`]'s entropy floor), so a generous per-byte ratio plus
/// an absolute ceiling rejects hostile headers without touching any stream a
/// real compressor can produce.
fn point_budget(len: usize) -> usize {
    len.saturating_mul(2048).min(dbgc_octree::DEFAULT_MAX_POINTS)
}

/// Structural information about a DBGC stream, read from headers and frame
/// lengths without decoding any point data.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamInfo {
    /// Error bound `q_xyz` the stream was encoded with.
    pub q_xyz: f64,
    /// Whether sparse channels are spherical (vs the −Conversion ablation).
    pub spherical: bool,
    /// Whether the radial-optimized encoding was used.
    pub radial: bool,
    /// Number of radial groups.
    pub groups: usize,
    /// Total point count.
    pub points: usize,
    /// Size of the dense (octree) section in bytes, including its length tag.
    pub dense_bytes: usize,
    /// Combined size of the sparse group sections in bytes.
    pub sparse_bytes: usize,
    /// Size of the outlier section in bytes.
    pub outlier_bytes: usize,
    /// Total stream size.
    pub total_bytes: usize,
}

impl StreamInfo {
    /// Compression ratio against 12-byte raw points.
    pub fn compression_ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.points as f64 * 12.0 / self.total_bytes as f64
        }
    }
}

/// Inspect a DBGC stream without decompressing it.
///
/// Walks the section framing only; cheap (microseconds) even for large
/// frames. Fails on the same malformed headers [`decompress`] would reject.
pub fn inspect(bytes: &[u8]) -> Result<StreamInfo, DbgcError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.read_slice(4).map_err(|_| DbgcError::BadHeader("missing magic"))?;
    if magic != MAGIC {
        return Err(DbgcError::BadHeader("wrong magic"));
    }
    let version = r.read_u8().map_err(|_| DbgcError::BadHeader("missing version"))?;
    if version != VERSION && version != VERSION_DUAL {
        return Err(DbgcError::BadHeader("unsupported version"));
    }
    let q_xyz = r.read_f64().map_err(DbgcError::from)?;
    let _u_theta = r.read_f64().map_err(DbgcError::from)?;
    let _u_phi = r.read_f64().map_err(DbgcError::from)?;
    let _th_r = r.read_f64().map_err(DbgcError::from)?;
    let flags = r.read_u8().map_err(DbgcError::from)?;
    let n_groups = r.read_uvarint().map_err(DbgcError::from)? as usize;
    let points = r.read_uvarint().map_err(DbgcError::from)? as usize;

    let dense_mark = r.position();
    let dense_len = r.read_uvarint().map_err(DbgcError::from)? as usize;
    r.read_slice(dense_len).map_err(DbgcError::from)?;
    let dense_bytes = r.position() - dense_mark;

    // Sparse groups: r_max + frames. Frames are self-delimiting
    // (count | raw_len | coded_len | payload); skip by reading lengths.
    let sparse_mark = r.position();
    let spherical = flags & FLAG_SPHERICAL != 0;
    let radial = flags & FLAG_RADIAL != 0;
    // Frame counts per group: lengths, c1 heads/tails, c2 heads/tails,
    // radial: head/tail nabla + refs (3) or plain heads/tails (2).
    let frames_per_group = 5 + if radial { 3 } else { 2 };
    for _ in 0..n_groups {
        let _r_max = r.read_f64().map_err(DbgcError::from)?;
        for _ in 0..frames_per_group {
            let _count = r.read_uvarint().map_err(DbgcError::from)?;
            let _raw = r.read_uvarint().map_err(DbgcError::from)?;
            let coded = r.read_uvarint().map_err(DbgcError::from)? as usize;
            r.read_slice(coded).map_err(DbgcError::from)?;
        }
    }
    let sparse_bytes = r.position() - sparse_mark;
    let outlier_bytes = r.remaining();

    Ok(StreamInfo {
        q_xyz,
        spherical,
        radial,
        groups: n_groups,
        points,
        dense_bytes,
        sparse_bytes,
        outlier_bytes,
        total_bytes: bytes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dbgc;
    use dbgc_geom::Point3;

    fn ring_cloud(n: usize) -> PointCloud {
        (0..n)
            .map(|i| {
                let th = i as f64 / n as f64 * std::f64::consts::TAU;
                Point3::new(18.0 * th.cos(), 18.0 * th.sin(), -1.7)
            })
            .collect()
    }

    #[test]
    fn inspect_matches_compressor_stats() {
        let cloud = ring_cloud(4000);
        let frame = Dbgc::with_error_bound(0.02).compress(&cloud).unwrap();
        let info = inspect(&frame.bytes).unwrap();
        assert_eq!(info.points, cloud.len());
        assert_eq!(info.total_bytes, frame.bytes.len());
        assert_eq!(info.dense_bytes, frame.stats.sections.dense);
        assert_eq!(info.sparse_bytes, frame.stats.sections.sparse);
        assert_eq!(info.outlier_bytes, frame.stats.sections.outlier);
        assert!(info.spherical && info.radial);
        assert_eq!(info.groups, 3);
        assert!((info.q_xyz - 0.02).abs() < 1e-15);
        assert!((info.compression_ratio() - frame.compression_ratio()).abs() < 1e-9);
    }

    #[test]
    fn dual_lane_stream_roundtrips_under_version_2() {
        let cloud = ring_cloud(3000);
        let cfg = crate::DbgcConfig::with_error_bound(0.02).with_dense_dual_lane(true);
        let frame = Dbgc::new(cfg.clone()).compress(&cloud).unwrap();
        assert_eq!(frame.bytes[4], 2, "dual-lane frames carry stream version 2");
        let (decoded, _) = decompress(&frame.bytes).unwrap();
        crate::verify::verify_roundtrip(&cloud, &decoded, &frame, cfg.q_xyz).unwrap();
        // Everything outside the dense section is shared with version 1, so
        // the size difference is bounded by the dual frame overhead.
        let v1 = Dbgc::with_error_bound(0.02).compress(&cloud).unwrap();
        assert_eq!(v1.bytes[4], 1);
        assert!(frame.bytes.len() <= v1.bytes.len() + 32);
        assert!(inspect(&frame.bytes).is_ok());
    }

    #[test]
    fn inspect_ablated_stream() {
        let cloud = ring_cloud(1000);
        let cfg = crate::DbgcConfig::with_error_bound(0.05).without_conversion();
        let frame = Dbgc::new(cfg).compress(&cloud).unwrap();
        let info = inspect(&frame.bytes).unwrap();
        assert!(!info.spherical && !info.radial);
    }

    #[test]
    fn inspect_is_cheap_relative_to_decode() {
        // Structural walk only: no points are materialized, so inspecting a
        // truncated-but-framed stream succeeds while decode would fail on
        // content. Sanity: inspect never reports more bytes than given.
        let cloud = ring_cloud(2000);
        let frame = Dbgc::with_error_bound(0.02).compress(&cloud).unwrap();
        let info = inspect(&frame.bytes).unwrap();
        assert!(info.dense_bytes + info.sparse_bytes + info.outlier_bytes <= info.total_bytes);
    }

    #[test]
    fn inspect_single_group_stream() {
        let cloud = ring_cloud(1500);
        let cfg = crate::DbgcConfig::with_error_bound(0.02).without_grouping();
        let frame = Dbgc::new(cfg).compress(&cloud).unwrap();
        let info = inspect(&frame.bytes).unwrap();
        assert_eq!(info.groups, 1);
        assert!(info.radial);
    }

    #[test]
    fn inspect_rejects_garbage() {
        assert!(inspect(b"not a dbgc stream").is_err());
        assert!(inspect(&[]).is_err());
    }
}
