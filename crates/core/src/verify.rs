//! Round-trip verification against the paper's error-bound semantics.
//!
//! DBGC's three paths have different guarantees (see DESIGN.md §5):
//!
//! * octree (dense) and quadtree/octree outliers: per-axis error `<= q`;
//! * spherical polyline points: Euclidean error `<= √(2 + sin²φ)·q <= √3·q`
//!   (Lemma 3.2), the same worst case as per-axis-`q` Cartesian quantization;
//! * Cartesian polyline points (−Conversion): per-axis error `<= q`.
//!
//! [`verify_roundtrip`] therefore checks the Euclidean bound `√3·q` for every
//! pair — valid for all paths — and reports the measured maxima so callers
//! can assert the tighter per-path bounds when they know the configuration.

use dbgc_geom::{CloudError, ErrorReport, PointCloud};

use crate::pipeline::CompressedFrame;

/// Tolerance multiplier absorbing floating-point slop in the conversions.
const FLOAT_SLACK: f64 = 1.0 + 1e-9;

/// Verify a compress/decompress round trip: one-to-one mapping and the
/// Lemma 3.2 error bound. Returns the measured error report.
pub fn verify_roundtrip(
    original: &PointCloud,
    decompressed: &PointCloud,
    frame: &CompressedFrame,
    q_xyz: f64,
) -> Result<ErrorReport, CloudError> {
    let report = ErrorReport::paired(original, decompressed, &frame.mapping)?;
    let bound = (3.0f64).sqrt() * q_xyz * FLOAT_SLACK;
    if report.max_euclidean_error > bound {
        return Err(CloudError::BoundExceeded {
            index: usize::MAX,
            error: report.max_euclidean_error,
            bound,
        });
    }
    Ok(report)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::{Dbgc, DbgcConfig};
    use dbgc_geom::Point3;
    use rand::{Rng, SeedableRng};

    /// A small LiDAR-ish cloud: dense near-field disc + sparse rings.
    pub(crate) fn mini_lidar_cloud(seed: u64, n_dense: usize, n_rings: usize) -> PointCloud {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut cloud = PointCloud::new();
        for _ in 0..n_dense {
            let r = rng.gen_range(2.0..6.0);
            let th = rng.gen_range(0.0..std::f64::consts::TAU);
            cloud.push(Point3::new(r * th.cos(), r * th.sin(), rng.gen_range(-1.73..-1.65)));
        }
        for ring in 0..n_rings {
            let r0 = 15.0 + ring as f64 * 4.0;
            for k in 0..600 {
                if rng.gen_bool(0.1) {
                    continue;
                }
                let th = k as f64 / 600.0 * std::f64::consts::TAU + rng.gen_range(-0.001..0.001);
                let r = r0 + rng.gen_range(-0.02..0.02);
                cloud.push(Point3::new(r * th.cos(), r * th.sin(), -1.73));
            }
        }
        cloud
    }

    #[test]
    fn verify_accepts_valid_roundtrip() {
        let cloud = mini_lidar_cloud(1, 2000, 5);
        let dbgc = Dbgc::new(DbgcConfig::with_error_bound(0.02));
        let frame = dbgc.compress(&cloud).unwrap();
        let (dec, _) = crate::decompress(&frame.bytes).unwrap();
        let report = verify_roundtrip(&cloud, &dec, &frame, 0.02).unwrap();
        assert!(report.max_euclidean_error <= 3.0f64.sqrt() * 0.02 * 1.01);
        assert_eq!(report.pairs, cloud.len());
    }

    #[test]
    fn verify_rejects_wrong_bound() {
        let cloud = mini_lidar_cloud(2, 500, 2);
        let dbgc = Dbgc::new(DbgcConfig::with_error_bound(0.05));
        let frame = dbgc.compress(&cloud).unwrap();
        let (dec, _) = crate::decompress(&frame.bytes).unwrap();
        // Checking against a much tighter bound than used must fail (the
        // stream was quantized at 5 cm).
        assert!(verify_roundtrip(&cloud, &dec, &frame, 0.001).is_err());
    }
}
