//! Optimized outlier compression (§3.6, Table 2).
//!
//! Outliers are sparse points on no polyline — typically far, isolated
//! returns spread over the `xoy` plane while the z range stays small (LiDAR
//! vertical FOV is narrow). DBGC therefore encodes `(x, y)` with a 2D
//! quadtree and carries `z` as a separate delta-coded attribute channel.
//! Table 2's alternatives — a 3D octree, and storing raw coordinates — are
//! provided for the ablation.

use dbgc_codec::varint::{write_uvarint, ByteReader};
use dbgc_codec::{intseq, CodecError};
use dbgc_geom::quant::{dequantize, quantize};
use dbgc_geom::Point3;
use dbgc_octree::{OctreeCodec, QuadtreeCodec};

use crate::config::OutlierMode;

/// Encode `points` under `mode`; returns the input→output index mapping.
pub fn encode_outliers(
    out: &mut Vec<u8>,
    points: &[Point3],
    q_xyz: f64,
    mode: OutlierMode,
) -> Vec<usize> {
    out.push(mode_tag(mode));
    match mode {
        OutlierMode::Quadtree => {
            let xy: Vec<(f64, f64)> = points.iter().map(|p| (p.x, p.y)).collect();
            let enc = QuadtreeCodec.encode(&xy, q_xyz);
            write_uvarint(out, enc.bytes.len() as u64);
            out.extend_from_slice(&enc.bytes);
            // z channel in decoded order, then delta + arithmetic coding.
            let step = 2.0 * q_xyz;
            let mut z_dec = vec![0i64; points.len()];
            for (i, p) in points.iter().enumerate() {
                z_dec[enc.mapping[i]] = quantize(p.z, step);
            }
            intseq::compress_ints_delta_rc(out, &z_dec);
            enc.mapping
        }
        OutlierMode::Octree => {
            let enc = OctreeCodec::baseline().encode(points, q_xyz);
            write_uvarint(out, enc.bytes.len() as u64);
            out.extend_from_slice(&enc.bytes);
            enc.mapping
        }
        OutlierMode::None => {
            write_uvarint(out, points.len() as u64);
            for p in points {
                out.extend_from_slice(&(p.x as f32).to_le_bytes());
                out.extend_from_slice(&(p.y as f32).to_le_bytes());
                out.extend_from_slice(&(p.z as f32).to_le_bytes());
            }
            (0..points.len()).collect()
        }
    }
}

/// Decode outliers written by [`encode_outliers`].
///
/// `max_points` bounds the decoded outlier count; hostile streams that claim
/// more fail with a typed error before large allocations happen.
pub fn decode_outliers(
    r: &mut ByteReader<'_>,
    q_xyz: f64,
    max_points: usize,
) -> Result<Vec<Point3>, CodecError> {
    let mode = tag_mode(r.read_u8()?)?;
    match mode {
        OutlierMode::Quadtree => {
            let len = r.read_uvarint()? as usize;
            let bytes = r.read_slice(len)?;
            let xy = QuadtreeCodec.decode_with_limit(bytes, max_points)?;
            let z = intseq::decompress_ints_delta_rc(r)?;
            if z.len() != xy.points.len() {
                return Err(CodecError::CorruptStream("outlier z-channel length mismatch"));
            }
            let step = 2.0 * q_xyz;
            Ok(xy
                .points
                .iter()
                .zip(&z)
                .map(|(&(x, y), &zq)| Point3::new(x, y, dequantize(zq, step)))
                .collect())
        }
        OutlierMode::Octree => {
            let len = r.read_uvarint()? as usize;
            let bytes = r.read_slice(len)?;
            Ok(OctreeCodec::baseline().decode_with_limit(bytes, max_points)?.points)
        }
        OutlierMode::None => {
            let n = r.read_uvarint()? as usize;
            // Each raw point costs 12 bytes, so the remaining buffer bounds n
            // exactly; the limit check keeps the error typed and uniform.
            if n > max_points || n > r.remaining() / 12 {
                return Err(CodecError::CorruptStream("outlier count exceeds limit"));
            }
            let mut pts = Vec::with_capacity(n);
            for _ in 0..n {
                let bytes = r.read_slice(12)?;
                let f = |i: usize| {
                    f32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("4 bytes")) as f64
                };
                pts.push(Point3::new(f(0), f(1), f(2)));
            }
            Ok(pts)
        }
    }
}

fn mode_tag(mode: OutlierMode) -> u8 {
    match mode {
        OutlierMode::Quadtree => 0,
        OutlierMode::Octree => 1,
        OutlierMode::None => 2,
    }
}

fn tag_mode(tag: u8) -> Result<OutlierMode, CodecError> {
    match tag {
        0 => Ok(OutlierMode::Quadtree),
        1 => Ok(OutlierMode::Octree),
        2 => Ok(OutlierMode::None),
        _ => Err(CodecError::CorruptStream("unknown outlier mode tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn far_flat_outliers(n: usize, seed: u64) -> Vec<Point3> {
        // Typical outliers: far returns spread over the xoy plane with a
        // narrow, spatially coherent z (mostly distant ground/low objects).
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let r = rng.gen_range(50.0..110.0);
                let th = rng.gen_range(0.0..std::f64::consts::TAU);
                let z = -1.73 + 0.004 * r + rng.gen_range(-0.05..0.05);
                Point3::new(r * th.cos(), r * th.sin(), z)
            })
            .collect()
    }

    fn check(points: &[Point3], q: f64, mode: OutlierMode, tol: f64) -> usize {
        let mut out = Vec::new();
        let mapping = encode_outliers(&mut out, points, q, mode);
        let mut r = ByteReader::new(&out);
        let dec = decode_outliers(&mut r, q, 1 << 24).unwrap();
        assert!(r.is_empty());
        assert_eq!(dec.len(), points.len());
        for (i, p) in points.iter().enumerate() {
            let d = dec[mapping[i]];
            assert!(p.linf_dist(d) <= tol, "point {i} err {}", p.linf_dist(d));
        }
        out.len()
    }

    #[test]
    fn quadtree_mode_meets_bound() {
        let pts = far_flat_outliers(1200, 110);
        check(&pts, 0.02, OutlierMode::Quadtree, 0.02 + 1e-9);
    }

    #[test]
    fn octree_mode_meets_bound() {
        let pts = far_flat_outliers(1200, 111);
        check(&pts, 0.02, OutlierMode::Octree, 0.02 + 1e-9);
    }

    #[test]
    fn none_mode_is_exact_to_f32() {
        let pts = far_flat_outliers(300, 112);
        // f32 rounding at ~100 m is ~1e-5.
        check(&pts, 0.02, OutlierMode::None, 1e-4);
    }

    #[test]
    fn quadtree_beats_octree_beats_none() {
        // Table 2's ordering on typical outlier geometry.
        let pts = far_flat_outliers(2000, 113);
        let q = 0.02;
        let quad = check(&pts, q, OutlierMode::Quadtree, q + 1e-9);
        let oct = check(&pts, q, OutlierMode::Octree, q + 1e-9);
        let none = check(&pts, q, OutlierMode::None, 1e-4);
        assert!(quad <= oct, "quadtree {quad} vs octree {oct}");
        assert!(oct < none, "octree {oct} vs none {none}");
    }

    #[test]
    fn empty_outliers() {
        for mode in [OutlierMode::Quadtree, OutlierMode::Octree, OutlierMode::None] {
            let mut out = Vec::new();
            let mapping = encode_outliers(&mut out, &[], 0.02, mode);
            assert!(mapping.is_empty());
            let mut r = ByteReader::new(&out);
            assert!(decode_outliers(&mut r, 0.02, 1 << 24).unwrap().is_empty());
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let buf = [9u8];
        let mut r = ByteReader::new(&buf);
        assert!(decode_outliers(&mut r, 0.02, 1 << 24).is_err());
    }
}
