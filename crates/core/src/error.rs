//! Error type for the DBGC pipeline.

use std::fmt;

use dbgc_codec::CodecError;

/// Compression or decompression failure.
#[derive(Debug, Clone, PartialEq)]
pub enum DbgcError {
    /// The configuration violates an invariant.
    InvalidConfig(String),
    /// The bitstream is malformed.
    Codec(CodecError),
    /// The stream does not start with the DBGC magic/version.
    BadHeader(&'static str),
    /// A non-finite (NaN/inf) coordinate was found in the input cloud.
    NonFinitePoint {
        /// Index of the offending point in the input cloud.
        index: usize,
    },
}

impl fmt::Display for DbgcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbgcError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DbgcError::Codec(e) => write!(f, "codec error: {e}"),
            DbgcError::BadHeader(what) => write!(f, "bad stream header: {what}"),
            DbgcError::NonFinitePoint { index } => {
                write!(f, "point {index} has a non-finite coordinate")
            }
        }
    }
}

impl std::error::Error for DbgcError {}

impl From<CodecError> for DbgcError {
    fn from(e: CodecError) -> Self {
        DbgcError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DbgcError::InvalidConfig("groups must be >= 1".into());
        assert!(e.to_string().contains("groups"));
        let e: DbgcError = CodecError::UnexpectedEof.into();
        assert!(e.to_string().contains("unexpected end"));
        assert!(DbgcError::NonFinitePoint { index: 7 }.to_string().contains('7'));
    }
}
