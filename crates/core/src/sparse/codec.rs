//! Coordinate compression of organized sparse points (§3.5 steps 2–9).
//!
//! Works on quantized polylines: each point is `[c1, c2, c3]`, which is
//! `[θ, φ, r]` in spherical mode or `[x, y, z]` in the −Conversion ablation.
//!
//! Per group, the following self-delimiting frames are emitted in order:
//!
//! 1. polyline lengths — arithmetic-coded (step 5);
//! 2. `ΔL_head^c1` — heads of all lines, delta-coded, Deflate (step 6);
//! 3. `ΔL_tail^c1` — within-line deltas of all tails, Deflate (step 6);
//! 4. `ΔL_head^c2` — arithmetic-coded (step 7);
//! 5. `ΔL_tail^c2` — arithmetic-coded (step 7);
//! 6. channel 3 (step 8): with radial optimization, `∇L_r` + `L_ref`;
//!    otherwise head/tail delta frames like channel 2.
//!
//! The head/tail separation is steps 3–4 (data reorganization): heads carry
//! absolute coordinates, tails carry deltas, and mixing their distributions
//! would hurt the entropy coders.

use dbgc_codec::intseq;
use dbgc_codec::varint::ByteReader;
use dbgc_codec::CodecError;

use super::radial::{decode_radial, encode_radial, encode_radial_into, RadialStreams};

/// Channel-3 behaviour and the radial thresholds, in quantized units.
#[derive(Debug, Clone, Copy)]
pub struct GroupCodecConfig {
    /// Use radial-distance-optimized delta encoding for channel 3.
    pub radial: bool,
    /// Code the range-coded frames through the four-lane wide entropy
    /// profile (`dbgc_codec::wide`) instead of the single-lane coder. Same
    /// models and frame order, different entropy payload framing — both
    /// ends must agree (the stream header's version carries this flag).
    /// Deflate frames are unaffected.
    pub wide: bool,
    /// `TH_φ` in quantized angle units (reference polyline set).
    pub th_phi: i64,
    /// `TH_r` in quantized radial units.
    pub th_r: i64,
}

/// `compress_ints_rc_with`-shaped entry point (narrow or wide).
type RcCompressFn = fn(&mut Vec<u8>, &[i64], &mut intseq::IntseqScratch);
/// `decompress_ints_rc`-shaped entry point (narrow or wide).
type RcDecompressFn = fn(&mut ByteReader<'_>) -> Result<Vec<i64>, CodecError>;

impl GroupCodecConfig {
    /// The int-sequence range compressor for this profile.
    fn rc_compress(&self) -> RcCompressFn {
        if self.wide {
            intseq::compress_ints_rc_wide_with
        } else {
            intseq::compress_ints_rc_with
        }
    }

    /// The int-sequence range decompressor for this profile.
    fn rc_decompress(&self) -> RcDecompressFn {
        if self.wide {
            intseq::decompress_ints_rc_wide
        } else {
            intseq::decompress_ints_rc
        }
    }
}

/// Reusable working memory for [`encode_group_to_buf`].
///
/// One group encode stages five integer sequences (lengths, two head frames,
/// two tail frames — plus the three radial streams) before entropy coding.
/// Keeping the backing allocations in a scratch arena lets a frame loop — or
/// a per-worker thread-local — pay for them once instead of once per group.
#[derive(Debug, Default)]
pub struct ScratchBuffers {
    /// Sequence staging area; each frame is filled, compressed, then reused.
    seq: Vec<i64>,
    /// Radial-channel streams (`∇L_r` heads/tails and `L_ref`).
    radial: RadialStreams,
    /// Integer-codec internals (varint staging, range-coder output buffer,
    /// positional byte models).
    intseq: intseq::IntseqScratch,
}

/// Fill `seq` with channel `c` of each line's head.
fn fill_heads(seq: &mut Vec<i64>, lines: &[Vec<[i64; 3]>], c: usize) {
    seq.clear();
    seq.extend(lines.iter().map(|l| l[0][c]));
}

/// Fill `seq` with channel `c`'s within-line deltas over all tails.
fn fill_tail_deltas(seq: &mut Vec<i64>, lines: &[Vec<[i64; 3]>], c: usize) {
    seq.clear();
    for l in lines {
        for k in 1..l.len() {
            seq.push(l[k][c] - l[k - 1][c]);
        }
    }
}

/// Encode one group of quantized polylines into `out`.
///
/// Convenience wrapper over [`encode_group_to_buf`] with throwaway scratch;
/// hot loops should hold a [`ScratchBuffers`] and call the latter.
pub fn encode_group(out: &mut Vec<u8>, lines: &[Vec<[i64; 3]>], cfg: &GroupCodecConfig) {
    encode_group_to_buf(out, lines, cfg, &mut ScratchBuffers::default());
}

/// Encode one group of quantized polylines into `out`, staging intermediate
/// sequences in `scratch`. The bytes appended to `out` are identical for any
/// scratch state — `scratch` only recycles capacity.
pub fn encode_group_to_buf(
    out: &mut Vec<u8>,
    lines: &[Vec<[i64; 3]>],
    cfg: &GroupCodecConfig,
    scratch: &mut ScratchBuffers,
) {
    debug_assert!(lines.iter().all(|l| !l.is_empty()), "no empty polylines");

    let ScratchBuffers { seq, radial, intseq: iscr } = scratch;
    let rc = cfg.rc_compress();

    // Step 5: lengths.
    seq.clear();
    seq.extend(lines.iter().map(|l| l.len() as i64));
    rc(out, seq, iscr);

    // Steps 2-4 (head/tail split) + step 6: azimuthal channel via Deflate
    // (repeated cross-line patterns).
    fill_heads(seq, lines, 0);
    dbgc_codec::delta_encode_in_place(seq);
    intseq::compress_ints_deflate_with(out, seq, iscr);
    fill_tail_deltas(seq, lines, 0);
    intseq::compress_ints_deflate_with(out, seq, iscr);

    // Step 7: polar channel via arithmetic coding.
    fill_heads(seq, lines, 1);
    dbgc_codec::delta_encode_in_place(seq);
    rc(out, seq, iscr);
    fill_tail_deltas(seq, lines, 1);
    rc(out, seq, iscr);

    // Step 8: radial channel (head/tail residuals in separate frames).
    if cfg.radial {
        encode_radial_into(lines, cfg.th_phi, cfg.th_r, radial);
        rc(out, &radial.head_nabla, iscr);
        rc(out, &radial.tail_nabla, iscr);
        if cfg.wide {
            intseq::compress_symbols_rc_wide(out, &radial.refs, 4);
        } else {
            intseq::compress_symbols_rc_with(out, &radial.refs, 4, iscr);
        }
    } else {
        fill_heads(seq, lines, 2);
        dbgc_codec::delta_encode_in_place(seq);
        rc(out, seq, iscr);
        fill_tail_deltas(seq, lines, 2);
        rc(out, seq, iscr);
    }
}

/// Decode one group of quantized polylines.
///
/// Equivalent to [`decode_group_with_limit`] with an unbounded point budget;
/// decoders entering a stream mid-way should pass the budget they actually
/// have left instead.
pub fn decode_group(
    r: &mut ByteReader<'_>,
    cfg: &GroupCodecConfig,
) -> Result<Vec<Vec<[i64; 3]>>, CodecError> {
    decode_group_with_limit(r, cfg, usize::MAX)
}

/// Decode one group of quantized polylines, budgeting the decoded point
/// count.
///
/// `max_points` bounds the group's total decoded points (sum of polyline
/// lengths). The check runs against the *declared* lengths before any line
/// is materialized, so a stream whose recorded count disagrees with its
/// header fails with a typed error instead of allocating past the budget —
/// the guarantee partial decodes rely on when they enter mid-stream with a
/// per-group (not whole-frame) budget.
pub fn decode_group_with_limit(
    r: &mut ByteReader<'_>,
    cfg: &GroupCodecConfig,
    max_points: usize,
) -> Result<Vec<Vec<[i64; 3]>>, CodecError> {
    let rc = cfg.rc_decompress();
    let lengths = rc(r)?;
    let n_lines = lengths.len();
    // Checked sum: a wrapped total could slip past the frame-count
    // cross-check below and overrun the tail slices while rebuilding lines.
    let total_tail: usize = lengths.iter().try_fold(0usize, |acc, &l| {
        if !(1..1 << 32).contains(&l) {
            return Err(CodecError::CorruptStream("bad polyline length"));
        }
        acc.checked_add(l as usize - 1)
            .ok_or(CodecError::CorruptStream("polyline lengths overflow"))
    })?;
    match n_lines.checked_add(total_tail) {
        Some(total) if total <= max_points => {}
        _ => return Err(CodecError::CorruptStream("group point count exceeds limit")),
    }

    let heads_c1 = dbgc_codec::delta_decode(&intseq::decompress_ints_deflate(r)?);
    let tails_c1 = intseq::decompress_ints_deflate(r)?;
    let heads_c2 = dbgc_codec::delta_decode(&rc(r)?);
    let tails_c2 = rc(r)?;
    if heads_c1.len() != n_lines
        || heads_c2.len() != n_lines
        || tails_c1.len() != total_tail
        || tails_c2.len() != total_tail
    {
        return Err(CodecError::CorruptStream("sparse frame count mismatch"));
    }

    // Rebuild lines with channels 1-2; channel 3 placeholder.
    let mut lines: Vec<Vec<[i64; 3]>> = Vec::with_capacity(n_lines);
    let mut t = 0usize;
    for li in 0..n_lines {
        let len = lengths[li] as usize;
        let mut line = Vec::with_capacity(len);
        line.push([heads_c1[li], heads_c2[li], 0]);
        for _ in 1..len {
            let prev = *line.last().expect("line non-empty");
            line.push([prev[0] + tails_c1[t], prev[1] + tails_c2[t], 0]);
            t += 1;
        }
        lines.push(line);
    }

    if cfg.radial {
        let streams = super::radial::RadialStreams {
            head_nabla: rc(r)?,
            tail_nabla: rc(r)?,
            refs: if cfg.wide {
                intseq::decompress_symbols_rc_wide(r)?
            } else {
                intseq::decompress_symbols_rc(r)?
            },
        };
        decode_radial(&mut lines, &streams, cfg.th_phi, cfg.th_r)?;
    } else {
        let heads_c3 = dbgc_codec::delta_decode(&rc(r)?);
        let tails_c3 = rc(r)?;
        if heads_c3.len() != n_lines || tails_c3.len() != total_tail {
            return Err(CodecError::CorruptStream("channel-3 frame count mismatch"));
        }
        let mut t = 0usize;
        for (li, line) in lines.iter_mut().enumerate() {
            line[0][2] = heads_c3[li];
            for k in 1..line.len() {
                line[k][2] = line[k - 1][2] + tails_c3[t];
                t += 1;
            }
        }
    }
    Ok(lines)
}

/// Per-frame byte sizes of one encoded group, for diagnostics and the
/// experiment harness (stream-cost breakdowns).
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupStreamSizes {
    /// Step-5 polyline-length frame.
    pub lengths: usize,
    /// Step-6 azimuthal head frame (Deflate).
    pub c1_heads: usize,
    /// Step-6 azimuthal tail frame (Deflate).
    pub c1_tails: usize,
    /// Step-7 polar head frame (arithmetic).
    pub c2_heads: usize,
    /// Step-7 polar tail frame (arithmetic).
    pub c2_tails: usize,
    /// Step-8 radial frames (`∇L_r`, or head+tail deltas when −Radial).
    pub c3: usize,
    /// Step-8 `L_ref` symbol frame.
    pub refs: usize,
}

/// Encode a group while measuring each frame's size.
pub fn measure_group(lines: &[Vec<[i64; 3]>], cfg: &GroupCodecConfig) -> GroupStreamSizes {
    let heads = |c: usize| -> Vec<i64> { lines.iter().map(|l| l[0][c]).collect() };
    let tail_deltas = |c: usize| -> Vec<i64> {
        let mut v = Vec::new();
        for l in lines {
            for k in 1..l.len() {
                v.push(l[k][c] - l[k - 1][c]);
            }
        }
        v
    };
    let rc_size = |vals: &[i64]| {
        let mut b = Vec::new();
        cfg.rc_compress()(&mut b, vals, &mut intseq::IntseqScratch::default());
        b.len()
    };
    let sz = |f: &dyn Fn(&mut Vec<u8>)| {
        let mut b = Vec::new();
        f(&mut b);
        b.len()
    };
    let mut sizes = GroupStreamSizes {
        lengths: rc_size(&lines.iter().map(|l| l.len() as i64).collect::<Vec<_>>()),
        c1_heads: sz(&|b| intseq::compress_ints_deflate(b, &dbgc_codec::delta_encode(&heads(0)))),
        c1_tails: sz(&|b| intseq::compress_ints_deflate(b, &tail_deltas(0))),
        c2_heads: rc_size(&dbgc_codec::delta_encode(&heads(1))),
        c2_tails: rc_size(&tail_deltas(1)),
        ..Default::default()
    };
    if cfg.radial {
        let streams = encode_radial(lines, cfg.th_phi, cfg.th_r);
        sizes.c3 = rc_size(&streams.head_nabla) + rc_size(&streams.tail_nabla);
        sizes.refs = sz(&|b| {
            if cfg.wide {
                intseq::compress_symbols_rc_wide(b, &streams.refs, 4)
            } else {
                intseq::compress_symbols_rc(b, &streams.refs, 4)
            }
        });
    } else {
        sizes.c3 = rc_size(&dbgc_codec::delta_encode(&heads(2))) + rc_size(&tail_deltas(2));
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn cfg(radial: bool) -> GroupCodecConfig {
        GroupCodecConfig { radial, wide: false, th_phi: 4, th_r: 50 }
    }

    fn wide_cfg(radial: bool) -> GroupCodecConfig {
        GroupCodecConfig { wide: true, ..cfg(radial) }
    }

    fn roundtrip(lines: &[Vec<[i64; 3]>], c: &GroupCodecConfig) -> usize {
        let mut out = Vec::new();
        encode_group(&mut out, lines, c);
        let mut r = ByteReader::new(&out);
        let back = decode_group(&mut r, c).unwrap();
        assert_eq!(back, lines);
        assert!(r.is_empty(), "stream fully consumed");
        out.len()
    }

    fn ring_lines(n_lines: usize, len: usize, seed: u64) -> Vec<Vec<[i64; 3]>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n_lines)
            .map(|li| {
                let mut theta = rng.gen_range(0..20);
                (0..len)
                    .map(|_| {
                        theta += rng.gen_range(8..12);
                        [theta, li as i64 * 3 + rng.gen_range(0..2), 500 + rng.gen_range(-3..3)]
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn roundtrip_radial_and_plain() {
        let lines = ring_lines(25, 40, 100);
        roundtrip(&lines, &cfg(true));
        roundtrip(&lines, &cfg(false));
    }

    #[test]
    fn empty_group() {
        roundtrip(&[], &cfg(true));
        roundtrip(&[], &cfg(false));
    }

    #[test]
    fn single_point_lines() {
        let lines: Vec<Vec<[i64; 3]>> = (0..10).map(|i| vec![[i * 7, i, 100 + i]]).collect();
        roundtrip(&lines, &cfg(true));
        roundtrip(&lines, &cfg(false));
    }

    #[test]
    fn regular_rings_compress_tightly() {
        // Perfectly regular rings: after delta everything is constant.
        let lines: Vec<Vec<[i64; 3]>> =
            (0..20).map(|li| (0..100).map(|k| [k * 9, li * 3, 700]).collect()).collect();
        let size = roundtrip(&lines, &cfg(true));
        let points = 20 * 100;
        assert!(
            size < points, // < 1 byte per 3D point
            "regular rings should cost under a byte per point, got {size} for {points}"
        );
    }

    #[test]
    fn radial_beats_plain_delta_on_edges() {
        // Rings crossing object edges at aligned θ positions — the scenario
        // the radial-distance-optimized encoding is built for. Compare the
        // channel-3 stream sizes; the geometry channels are identical.
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        // Object ranges vary per line (a leaning wall), so the jump sizes
        // are not constant and plain delta cannot learn them cheaply.
        let lines: Vec<Vec<[i64; 3]>> = (0..60)
            .map(|li| {
                let object_r = 300 + li * 7 + rng.gen_range(-5..5);
                let ground_r = 2000 + li * 11;
                (0..200)
                    .map(|k| {
                        let r = if (30..55).contains(&k) || (120..160).contains(&k) {
                            object_r
                        } else {
                            ground_r
                        };
                        [k * 9, li * 3, r + rng.gen_range(-2..3)]
                    })
                    .collect()
            })
            .collect();
        let radial = measure_group(&lines, &cfg(true));
        let plain = measure_group(&lines, &cfg(false));
        assert!(
            radial.c3 + radial.refs < plain.c3,
            "radial {}+{} should beat plain {}",
            radial.c3,
            radial.refs,
            plain.c3
        );
    }

    #[test]
    fn reused_scratch_is_byte_identical() {
        // A dirty scratch (capacity and stale contents from prior groups)
        // must not leak into the stream.
        let mut scratch = ScratchBuffers::default();
        let warmup = ring_lines(40, 60, 7);
        let mut sink = Vec::new();
        encode_group_to_buf(&mut sink, &warmup, &cfg(true), &mut scratch);
        for c in [cfg(true), cfg(false)] {
            for lines in [ring_lines(25, 40, 100), ring_lines(3, 5, 2), Vec::new()] {
                let mut fresh = Vec::new();
                encode_group(&mut fresh, &lines, &c);
                let mut reused = Vec::new();
                encode_group_to_buf(&mut reused, &lines, &c, &mut scratch);
                assert_eq!(fresh, reused, "scratch reuse changed the bytes");
            }
        }
    }

    #[test]
    fn wide_profile_roundtrip_radial_and_plain() {
        let lines = ring_lines(25, 40, 100);
        roundtrip(&lines, &wide_cfg(true));
        roundtrip(&lines, &wide_cfg(false));
        roundtrip(&[], &wide_cfg(true));
    }

    #[test]
    fn wide_profile_changes_framing_not_reconstruction() {
        // Same lines through both profiles: different bytes (lane framing),
        // same decoded polylines, and a size gap bounded by the per-frame
        // lane overhead (three flush tails + lane header per rc frame).
        let lines = ring_lines(30, 50, 200);
        for radial in [true, false] {
            let mut narrow = Vec::new();
            encode_group(&mut narrow, &lines, &cfg(radial));
            let mut wide = Vec::new();
            encode_group(&mut wide, &lines, &wide_cfg(radial));
            assert_ne!(narrow, wide, "profiles must frame differently");
            let rc_frames = if radial { 6 } else { 5 };
            assert!(
                wide.len() <= narrow.len() + rc_frames * 32,
                "wide {} vs narrow {}",
                wide.len(),
                narrow.len()
            );
            let mut r = ByteReader::new(&wide);
            assert_eq!(decode_group(&mut r, &wide_cfg(radial)).unwrap(), lines);
        }
    }

    #[test]
    fn wide_profile_truncation_is_error() {
        let lines = ring_lines(5, 10, 101);
        let mut out = Vec::new();
        encode_group(&mut out, &lines, &wide_cfg(true));
        for cut in [0, 5, out.len() / 2, out.len() - 3] {
            let mut r = ByteReader::new(&out[..cut]);
            assert!(decode_group(&mut r, &wide_cfg(true)).is_err(), "cut {cut}");
        }
        // Cross-profile decode must reject or mis-frame, never panic.
        let mut r = ByteReader::new(&out);
        let _ = decode_group(&mut r, &cfg(true));
    }

    #[test]
    fn negative_coordinates_roundtrip() {
        let lines: Vec<Vec<[i64; 3]>> =
            (0..5).map(|li| (0..20).map(|k| [k * 3 - 1000, -li * 2, -500 + k]).collect()).collect();
        roundtrip(&lines, &cfg(true));
    }

    #[test]
    fn truncated_stream_is_error() {
        let lines = ring_lines(5, 10, 101);
        let mut out = Vec::new();
        encode_group(&mut out, &lines, &cfg(true));
        for cut in [0, 5, out.len() / 2] {
            let mut r = ByteReader::new(&out[..cut]);
            assert!(decode_group(&mut r, &cfg(true)).is_err(), "cut {cut}");
        }
    }
}
