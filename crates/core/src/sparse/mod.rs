//! Sparse-point compression: organization, coordinate codec, radial scheme.

pub mod codec;
pub mod organize;
pub mod radial;
