//! Radial-distance-optimized delta encoding (§3.5 step 8).
//!
//! Plain delta coding on `r` suffers at object boundaries, where consecutive
//! polyline points jump between surfaces. Definition 3.3 generalizes the
//! reference point: it may come from the *consensus reference polyline* `l*`
//! (Algorithm 2) — a vertically adjacent, already-coded polyline — or from
//! the preceding point on the same line.
//!
//! The decoder reproduces every reference choice from information it already
//! has (decoded `θ`, `φ`, and previously decoded `r` values); only the
//! ambiguous case (2b), where the reference is whichever candidate's `r` is
//! nearest to the value being coded, records an explicit 2-bit symbol in
//! `L_ref`: `p_bl = 0`, `p_ur = 1`, `p_um = 2`, `p_ul = 3`.
//!
//! Points are stored as `[c1, c2, c3] = [θ, φ, r]` in quantized units.

use dbgc_codec::CodecError;

/// A point of the consensus polyline: azimuthal angle and radial distance in
/// quantized units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StarPoint {
    theta: i64,
    r: i64,
}

/// Build the consensus reference polyline `l*` for line `li` (Algorithm 2).
///
/// Reference polylines are the lines preceding `li` whose head polar angle is
/// within `th_phi` of `li`'s (Definition 3.4). They are merged left-to-right:
/// a later line replaces the span of `l*` its θ-range covers.
///
/// Reads `r` from channel 2 of earlier lines, which the decoder has already
/// filled, so encoder and decoder build identical consensus lines.
fn build_consensus_into(
    star: &mut Vec<StarPoint>,
    lines: &[Vec<[i64; 3]>],
    li: usize,
    th_phi: i64,
) {
    star.clear();
    let phi_head = lines[li][0][1];
    for line in lines.iter().take(li) {
        if line.is_empty() || (line[0][1] - phi_head).abs() > th_phi {
            continue;
        }
        merge_line(star, line);
    }
    debug_assert!(star.windows(2).all(|w| w[0].theta <= w[1].theta), "l* stays sorted");
}

/// Merge one reference line into the consensus, replacing the span of `l*`
/// its θ-range covers (the later line wins, per Algorithm 2).
fn merge_line(star: &mut Vec<StarPoint>, line: &[[i64; 3]]) {
    let front_t = line[0][0];
    let back_t = line[line.len() - 1][0];
    let as_star = line.iter().map(|p| StarPoint { theta: p[0], r: p[2] });
    match star.last() {
        None => star.extend(as_star),
        Some(last) if last.theta < front_t => star.extend(as_star),
        _ => {
            let lo = star.partition_point(|p| p.theta <= front_t);
            let hi = star.partition_point(|p| p.theta < back_t).max(lo);
            star.splice(lo..hi, as_star);
        }
    }
}

/// Head-φ index enabling the windowed fast path of [`build_consensus_for`].
///
/// Returns the per-line head φ values when every line is non-empty and the
/// heads are non-decreasing — both guaranteed by the organize stage, which
/// drops short lines and sorts polylines by head (φ, θ). Under that ordering
/// the Definition 3.4 predicate `|φ_head(j) − φ_head(li)| ≤ TH_φ` over
/// `j < li` reduces to `φ_head(j) ≥ φ_head(li) − TH_φ`, which selects a
/// contiguous suffix of the preceding lines: one binary search replaces the
/// O(lines²) filter scan. Returns `None` (scan fallback) otherwise.
fn sorted_heads(lines: &[Vec<[i64; 3]>]) -> Option<Vec<i64>> {
    let mut heads = Vec::with_capacity(lines.len());
    for line in lines {
        heads.push(line.first()?[1]);
    }
    heads.windows(2).all(|w| w[0] <= w[1]).then_some(heads)
}

/// Incrementally maintained consensus shared by the encode and decode loops.
///
/// With sorted heads the window `[lo, li)` only ever gains line `li − 1` at
/// the back, and its front `lo` is non-decreasing (the φ threshold grows with
/// `li`). Algorithm 2's merge is a left fold over the window in index order,
/// so a step that keeps the front can extend the previous consensus with a
/// single [`merge_line`] instead of refolding the whole window; the fold is
/// only rebuilt when `lo` advances (a scan-ring boundary). Every step
/// reproduces the exact fold the quadratic scan performs, so `l*` — and the
/// bitstream — is byte-identical.
struct ConsensusBuilder {
    star: Vec<StarPoint>,
    heads: Option<Vec<i64>>,
    win_lo: usize,
}

impl ConsensusBuilder {
    fn new(lines: &[Vec<[i64; 3]>]) -> Self {
        Self { star: Vec::new(), heads: sorted_heads(lines), win_lo: 0 }
    }

    /// Build `l*` for line `li`; must be called with `li = 0, 1, 2, …` in
    /// order (both codec loops do). Decoded `r` values merged into the
    /// retained consensus never change afterwards, so reuse is sound on the
    /// decode side too.
    fn advance(&mut self, lines: &[Vec<[i64; 3]>], li: usize, th_phi: i64) -> &[StarPoint] {
        match self.heads.as_deref() {
            Some(heads) => {
                let lo = heads[..li].partition_point(|&p| p < heads[li] - th_phi);
                if li > 0 && lo == self.win_lo {
                    merge_line(&mut self.star, &lines[li - 1]);
                } else {
                    self.star.clear();
                    for line in &lines[lo..li] {
                        merge_line(&mut self.star, line);
                    }
                }
                self.win_lo = lo;
                debug_assert!(
                    self.star.windows(2).all(|w| w[0].theta <= w[1].theta),
                    "l* stays sorted"
                );
            }
            None => build_consensus_into(&mut self.star, lines, li, th_phi),
        }
        &self.star
    }
}

/// [`build_consensus_into`] with a fresh buffer (test convenience).
#[cfg(test)]
fn build_consensus(lines: &[Vec<[i64; 3]>], li: usize, th_phi: i64) -> Vec<StarPoint> {
    let mut star = Vec::new();
    build_consensus_into(&mut star, lines, li, th_phi);
    star
}

/// Monotone cursor over the sorted consensus line.
///
/// Polyline points arrive in ascending θ (an organize-stage invariant), so
/// the two lower-bound positions [`reference`] needs per point only ever
/// advance; tracking them turns two `O(log n)` binary searches per point
/// into an amortized `O(1)` walk. Out-of-order θ (never produced by
/// organize, but accepted) falls back to `partition_point`, so the positions
/// — and the bitstream — are identical either way.
struct StarCursor {
    idx_l: usize,
    idx_r: usize,
    last_theta: i64,
    primed: bool,
}

impl StarCursor {
    fn new() -> Self {
        Self { idx_l: 0, idx_r: 0, last_theta: 0, primed: false }
    }

    /// `(partition_point(θ_s < θ), partition_point(θ_s <= θ))` over `star`.
    #[inline]
    fn seek(&mut self, star: &[StarPoint], theta_p: i64) -> (usize, usize) {
        if !self.primed || theta_p < self.last_theta {
            self.idx_l = star.partition_point(|s| s.theta < theta_p);
            self.idx_r = self.idx_l;
            self.primed = true;
        } else {
            while self.idx_l < star.len() && star[self.idx_l].theta < theta_p {
                self.idx_l += 1;
            }
            if self.idx_r < self.idx_l {
                self.idx_r = self.idx_l;
            }
        }
        while self.idx_r < star.len() && star[self.idx_r].theta <= theta_p {
            self.idx_r += 1;
        }
        self.last_theta = theta_p;
        (self.idx_l, self.idx_r)
    }
}

/// The reference decision for one point.
enum RefChoice {
    /// Situations (1) and (2a): the reference is implied; no symbol recorded.
    Implied(i64),
    /// Situation (2b): the first `len` entries of `cands` are the candidate
    /// `(symbol, r)` pairs in symbol order; the encoder picks the `r` nearest
    /// to the coded value and records the symbol. A fixed array — there are
    /// at most four candidates, and this sits on the per-point hot path.
    Recorded { cands: [(u8, i64); 4], len: usize },
}

/// Decide the reference for point `k` of line `li`, given the consensus line.
fn reference(
    lines: &[Vec<[i64; 3]>],
    li: usize,
    k: usize,
    star: &[StarPoint],
    cursor: &mut StarCursor,
    th_r: i64,
) -> RefChoice {
    let theta_p = lines[li][k][0];
    let (idx_l, idx_r) = cursor.seek(star, theta_p);
    // The "previous point" reference: the preceding point on the same line
    // for tails; for a head (situation 1) the head of the preceding polyline
    // plays that role — polylines are sorted by (φ, θ), so the previous head
    // usually continues the same interrupted scan ring.
    let bl = if k == 0 {
        if li == 0 {
            // Very first value of the group: only l* (if any) can help.
            if idx_l > 0 {
                return RefChoice::Implied(star[idx_l - 1].r);
            }
            return RefChoice::Implied(0);
        }
        lines[li - 1][0][2]
    } else {
        lines[li][k - 1][2]
    };
    let ul = (idx_l > 0).then(|| star[idx_l - 1].r);
    let ur = (idx_r < star.len()).then(|| star[idx_r].r);
    let um = (idx_r > idx_l).then(|| star[idx_r - 1].r);
    let (Some(ul), Some(ur)) = (ul, ur) else {
        return RefChoice::Implied(bl);
    };
    // Situation (2a): locally flat — every pair within TH_r, so plain delta
    // to `p_bl` is good and no choice needs recording.
    if (ul - ur).abs() <= th_r && (ul - bl).abs() <= th_r && (ur - bl).abs() <= th_r {
        return RefChoice::Implied(bl);
    }
    // Situation (2b).
    let mut cands = [(0u8, bl), (1u8, ur), (0, 0), (0, 0)];
    let mut len = 2;
    if let Some(um) = um {
        cands[len] = (2, um);
        len += 1;
    }
    cands[len] = (3, ul);
    len += 1;
    RefChoice::Recorded { cands, len }
}

/// Encoded radial channel: head and tail residuals are kept in separate
/// sequences — heads carry line-to-line references (situation 1) with a
/// wider distribution than the within-line tail residuals, and mixing them
/// into one entropy model measurably hurts (the same observation behind the
/// paper's step-3 head/tail reorganization of θ and φ).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RadialStreams {
    /// `∇r` of each line's head, in line order.
    pub head_nabla: Vec<i64>,
    /// `∇r` of all non-head points, in traversal order.
    pub tail_nabla: Vec<i64>,
    /// `L_ref` symbols for the recorded (2b) choices.
    pub refs: Vec<u8>,
}

/// Encode the radial channel of all lines.
pub fn encode_radial(lines: &[Vec<[i64; 3]>], th_phi: i64, th_r: i64) -> RadialStreams {
    let mut out = RadialStreams::default();
    encode_radial_into(lines, th_phi, th_r, &mut out);
    out
}

/// [`encode_radial`] into caller-owned streams, so a group-encode loop can
/// reuse the three backing allocations frame after frame.
pub fn encode_radial_into(
    lines: &[Vec<[i64; 3]>],
    th_phi: i64,
    th_r: i64,
    out: &mut RadialStreams,
) {
    out.head_nabla.clear();
    out.tail_nabla.clear();
    out.refs.clear();
    let mut consensus = ConsensusBuilder::new(lines);
    for li in 0..lines.len() {
        let star = consensus.advance(lines, li, th_phi);
        let mut cursor = StarCursor::new();
        for k in 0..lines[li].len() {
            let r = lines[li][k][2];
            let nabla = match reference(lines, li, k, star, &mut cursor, th_r) {
                RefChoice::Implied(ref_r) => r - ref_r,
                RefChoice::Recorded { cands, len } => {
                    let &(sym, ref_r) = cands[..len]
                        .iter()
                        .min_by_key(|&&(sym, cr)| ((r - cr).abs(), sym))
                        .expect("candidates are non-empty");
                    out.refs.push(sym);
                    r - ref_r
                }
            };
            if k == 0 {
                out.head_nabla.push(nabla);
            } else {
                out.tail_nabla.push(nabla);
            }
        }
    }
}

/// Decode the radial channel in place; `lines[..][..]\[2\]` must be zeroed (or
/// arbitrary) on entry and is overwritten.
pub fn decode_radial(
    lines: &mut [Vec<[i64; 3]>],
    streams: &RadialStreams,
    th_phi: i64,
    th_r: i64,
) -> Result<(), CodecError> {
    let mut hi = 0usize;
    let mut ti = 0usize;
    let mut ri = 0usize;
    let mut consensus = ConsensusBuilder::new(lines);
    for li in 0..lines.len() {
        let star = consensus.advance(lines, li, th_phi);
        let mut cursor = StarCursor::new();
        for k in 0..lines[li].len() {
            let d = if k == 0 {
                let d = *streams
                    .head_nabla
                    .get(hi)
                    .ok_or(CodecError::CorruptStream("∇L_r head underrun"))?;
                hi += 1;
                d
            } else {
                let d = *streams
                    .tail_nabla
                    .get(ti)
                    .ok_or(CodecError::CorruptStream("∇L_r tail underrun"))?;
                ti += 1;
                d
            };
            let ref_r = match reference(lines, li, k, star, &mut cursor, th_r) {
                RefChoice::Implied(r) => r,
                RefChoice::Recorded { cands, len } => {
                    let sym =
                        *streams.refs.get(ri).ok_or(CodecError::CorruptStream("L_ref underrun"))?;
                    ri += 1;
                    cands[..len]
                        .iter()
                        .find(|&&(s, _)| s == sym)
                        .ok_or(CodecError::CorruptStream("invalid L_ref symbol"))?
                        .1
                }
            };
            lines[li][k][2] = ref_r + d;
        }
    }
    if hi != streams.head_nabla.len() || ti != streams.tail_nabla.len() || ri != streams.refs.len()
    {
        return Err(CodecError::CorruptStream("radial stream length mismatch"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-trip helper: encode, wipe r, decode, compare. Returns the
    /// concatenated residuals in traversal order plus the L_ref symbols.
    fn roundtrip(lines: &[Vec<[i64; 3]>], th_phi: i64, th_r: i64) -> (Vec<i64>, Vec<u8>) {
        let streams = encode_radial(lines, th_phi, th_r);
        let mut wiped: Vec<Vec<[i64; 3]>> =
            lines.iter().map(|l| l.iter().map(|p| [p[0], p[1], 0]).collect()).collect();
        decode_radial(&mut wiped, &streams, th_phi, th_r).unwrap();
        assert_eq!(wiped, lines, "lossless radial round-trip");
        // Re-interleave for assertions that index by traversal order.
        let mut nabla = Vec::new();
        let (mut hi, mut ti) = (0usize, 0usize);
        for l in lines {
            nabla.push(streams.head_nabla[hi]);
            hi += 1;
            for _ in 1..l.len() {
                nabla.push(streams.tail_nabla[ti]);
                ti += 1;
            }
        }
        (nabla, streams.refs)
    }

    /// Two stacked rings over a flat scene: small deltas, no symbols.
    #[test]
    fn flat_scene_uses_no_symbols() {
        let line = |phi: i64, r0: i64| -> Vec<[i64; 3]> {
            (0..30).map(|i| [i * 10, phi, r0 + (i % 3)]).collect()
        };
        let lines = vec![line(100, 500), line(102, 505)];
        let (nabla, refs) = roundtrip(&lines, 4, 50);
        assert!(refs.is_empty(), "flat scene must stay in situation 2a: {refs:?}");
        // Deltas stay small.
        assert!(nabla[1..].iter().all(|&d| d.abs() <= 10), "{nabla:?}");
    }

    /// An object edge: the same θ span jumps in r on both lines; the upper
    /// line should be the better reference across the edge.
    #[test]
    fn object_edge_uses_upper_reference() {
        let edge_line = |phi: i64| -> Vec<[i64; 3]> {
            (0..30)
                .map(|i| {
                    let r = if (10..20).contains(&i) { 200 } else { 900 };
                    [i * 10, phi, r]
                })
                .collect()
        };
        let lines = vec![edge_line(100), edge_line(102)];
        let (nabla, refs) = roundtrip(&lines, 4, 50);
        assert!(!refs.is_empty(), "edges must trigger situation 2b");
        // With the upper line available, the second line's edge deltas are
        // near zero instead of ±700.
        let second_line_deltas = &nabla[30..];
        let big = second_line_deltas.iter().filter(|d| d.abs() > 100).count();
        assert!(big <= 2, "most deltas should use the upper reference: {second_line_deltas:?}");
    }

    #[test]
    fn plain_delta_matches_when_no_reference_lines() {
        // A single line: head gets the zero reference, the rest delta to the
        // preceding point.
        let line: Vec<[i64; 3]> = (0..10).map(|i| [i * 10, 50, 300 + i * 2]).collect();
        let (nabla, refs) = roundtrip(std::slice::from_ref(&line), 4, 50);
        assert!(refs.is_empty());
        assert_eq!(nabla[0], 300);
        assert!(nabla[1..].iter().all(|&d| d == 2));
    }

    #[test]
    fn reference_set_respects_th_phi() {
        // Second line's φ is far outside TH_φ: it must not reference line 0.
        let l0: Vec<[i64; 3]> = (0..10).map(|i| [i * 10, 0, 100]).collect();
        let l1: Vec<[i64; 3]> = (0..10).map(|i| [i * 10, 1000, 500]).collect();
        let (nabla, _) = roundtrip(&[l0, l1], 4, 50);
        // Line 1's head references line 0's head (fallback), giving 400, and
        // the rest plain-delta (0) — never l*-based values.
        assert_eq!(nabla[10], 400);
        assert!(nabla[11..].iter().all(|&d| d == 0));
    }

    #[test]
    fn consensus_splice_prefers_later_lines() {
        // Line 0 covers θ 0..300 at r=100; line 1 covers θ 100..200 at r=900.
        // For line 2, l* should contain r=900 in the middle span.
        let l0: Vec<[i64; 3]> = (0..30).map(|i| [i * 10, 0, 100]).collect();
        let l1: Vec<[i64; 3]> = (10..20).map(|i| [i * 10, 1, 900]).collect();
        let lines = vec![l0, l1];
        let star = build_consensus(&lines, 1, 4);
        // Building for line 1 only includes line 0.
        assert_eq!(star.len(), 30);
        let l2: Vec<[i64; 3]> = vec![[150, 2, 0]];
        let mut all = lines;
        all.push(l2);
        let star = build_consensus(&all, 2, 4);
        // The interior of the overlap was replaced by line 1's points (the
        // boundary θ values keep one point from each line).
        let mid: Vec<i64> =
            star.iter().filter(|s| (105..=185).contains(&s.theta)).map(|s| s.r).collect();
        assert!(!mid.is_empty() && mid.iter().all(|&r| r == 900), "{mid:?}");
        assert!(star.windows(2).all(|w| w[0].theta <= w[1].theta));
    }

    #[test]
    fn corrupt_streams_rejected() {
        let line: Vec<[i64; 3]> = (0..5).map(|i| [i * 10, 0, 100]).collect();
        let lines = vec![line];
        let streams = encode_radial(&lines, 4, 50);
        let mut short = streams.clone();
        short.tail_nabla.pop();
        let mut wiped = lines.clone();
        assert!(decode_radial(&mut wiped, &short, 4, 50).is_err());
        let mut long = streams.clone();
        long.tail_nabla.push(0);
        let mut wiped = lines.clone();
        assert!(decode_radial(&mut wiped, &long, 4, 50).is_err());
        let mut extra_refs = streams;
        extra_refs.refs.push(0);
        let mut wiped = lines.clone();
        assert!(decode_radial(&mut wiped, &extra_refs, 4, 50).is_err());
    }

    /// The windowed consensus fast path must agree with the quadratic scan
    /// line-for-line on sorted input (the organize-stage invariant).
    #[test]
    fn windowed_consensus_matches_scan() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut lines: Vec<Vec<[i64; 3]>> = Vec::new();
        let mut phi = 0i64;
        for _ in 0..60 {
            phi += rng.gen_range(0..4);
            let len = rng.gen_range(1..30);
            let mut theta = rng.gen_range(0..400);
            lines.push(
                (0..len)
                    .map(|_| {
                        theta += rng.gen_range(1..12);
                        [theta, phi, rng.gen_range(0..3000)]
                    })
                    .collect(),
            );
        }
        let mut fast = ConsensusBuilder::new(&lines);
        assert!(fast.heads.is_some(), "generated heads are sorted");
        for li in 0..lines.len() {
            let star = fast.advance(&lines, li, 5).to_vec();
            assert_eq!(star, build_consensus(&lines, li, 5), "line {li}");
        }
    }

    /// The monotone [`StarCursor`] must return exactly the two
    /// `partition_point` lower bounds for every query — ascending runs
    /// (the organize invariant, amortized O(1)), repeats, and out-of-order
    /// regressions (the binary-search fallback) alike.
    #[test]
    fn star_cursor_matches_binary_search() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(47);
        for _ in 0..200 {
            // A sorted star with duplicate θ plateaus (splice boundaries).
            let mut theta = 0i64;
            let star: Vec<StarPoint> = (0..rng.gen_range(0..40))
                .map(|_| {
                    theta += rng.gen_range(0..6);
                    StarPoint { theta, r: rng.gen_range(0..3000) }
                })
                .collect();
            let mut cursor = StarCursor::new();
            let mut q = rng.gen_range(-5..5i64);
            for _ in 0..60 {
                // Mostly ascending, occasionally jumping backwards.
                q = if rng.gen_range(0..8) == 0 {
                    rng.gen_range(-5..theta.max(1) + 5)
                } else {
                    q + rng.gen_range(0..4)
                };
                let expect_l = star.partition_point(|s| s.theta < q);
                let expect_r = star.partition_point(|s| s.theta <= q);
                assert_eq!(
                    cursor.seek(&star, q),
                    (expect_l, expect_r),
                    "cursor diverged at θ={q} over {} star points",
                    star.len()
                );
            }
        }
    }

    /// Unsorted heads must disable the window and still round-trip.
    #[test]
    fn unsorted_heads_fall_back_to_scan() {
        let l0: Vec<[i64; 3]> = (0..10).map(|i| [i * 10, 50, 700]).collect();
        let l1: Vec<[i64; 3]> = (0..10).map(|i| [i * 10, 48, 300]).collect();
        let lines = vec![l0, l1];
        assert!(sorted_heads(&lines).is_none());
        roundtrip(&lines, 4, 50);
    }

    #[test]
    fn random_lines_roundtrip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(91);
        let mut lines = Vec::new();
        for li in 0..40 {
            let len = rng.gen_range(1..40);
            let start = rng.gen_range(0..500);
            let mut theta = start;
            let line: Vec<[i64; 3]> = (0..len)
                .map(|_| {
                    theta += rng.gen_range(1..15);
                    [theta, li * 2 + rng.gen_range(0..2), rng.gen_range(0..3000)]
                })
                .collect();
            lines.push(line);
        }
        roundtrip(&lines, 4, 50);
    }
}
