//! Point organization: Algorithm 1 of the paper (§3.4).
//!
//! Sparse points are organized into near-horizontal polylines in `(θ, φ)`
//! space. A polyline starts at a seed point; its polar band is fixed to the
//! seed's `φ ± u_φ`; it is extended to the right (and then to the left) by
//! repeatedly picking, among the points with `0 < Δθ <= 2·u_θ` inside the
//! band, the one closest in 3D Euclidean distance. Points on polylines
//! shorter than the configured minimum become *outliers*.
//!
//! Organization runs on the encoder only; any deterministic result is valid,
//! so this module is free to use floating-point angles directly.

use dbgc_geom::{FxHashMap, Point3, Spherical};

/// The organized output: polyline point indices (into the group's point
/// array) and leftover outlier indices.
#[derive(Debug, Clone, Default)]
pub struct Organized {
    /// Polylines, sorted by (polar angle of head, azimuthal angle of head).
    /// Each polyline lists point indices left-to-right (ascending θ).
    pub polylines: Vec<Vec<u32>>,
    /// Points not on any (sufficiently long) polyline.
    pub outliers: Vec<u32>,
}

impl Organized {
    /// Total number of points on polylines.
    pub fn polyline_points(&self) -> usize {
        self.polylines.iter().map(Vec::len).sum()
    }
}

/// Reusable working memory for [`organize_sparse_points_with`].
///
/// Holds the SoA angle arrays, the dense candidate grid (CSR layout built by
/// counting sort), the used-point bitmap, and the per-polyline extension
/// staging buffers. Purely an allocation cache: results are identical for any
/// scratch state.
#[derive(Debug, Clone, Default)]
pub struct OrganizeScratch {
    /// SoA copy of the group's azimuthal angles — the extend loop touches θ
    /// and φ of many candidates but never `r`, so splitting them out of the
    /// 24-byte `Spherical` triples the useful bytes per cache line.
    theta: Vec<f64>,
    phi: Vec<f64>,
    /// Dense grid, CSR: `cell_pts[cell_start[c]..cell_start[c + 1]]` lists
    /// the points of cell `c` in ascending index order.
    cell_start: Vec<u32>,
    cell_pts: Vec<u32>,
    /// Points already placed on a polyline.
    used: Vec<bool>,
    /// Rightward / leftward extension staging for the current polyline.
    right: Vec<u32>,
    left: Vec<u32>,
    /// Spare polyline vectors recycled from previous outputs, so a warm
    /// organize emits lines without allocating.
    line_pool: Vec<Vec<u32>>,
}

/// Candidate index over the angle grid: a dense CSR grid when the angle span
/// is reasonable (the common case — LiDAR angles are bounded), a hash grid
/// for pathological spreads where a dense array would be mostly empty.
enum GridKind {
    Dense { w: i64, h: i64, tc_min: i64, pc_min: i64 },
    Hash(FxHashMap<(i64, i64), Vec<u32>>),
}

#[inline]
fn cell_coords(theta: f64, phi: f64, u_theta: f64, u_phi: f64) -> (i64, i64) {
    ((theta / u_theta).floor() as i64, (phi / u_phi).floor() as i64)
}

/// Build the candidate grid over the SoA angles in `scratch`.
fn build_grid(scratch: &mut OrganizeScratch, u_theta: f64, u_phi: f64) -> GridKind {
    let n = scratch.theta.len();
    let (mut tc_min, mut tc_max) = (i64::MAX, i64::MIN);
    let (mut pc_min, mut pc_max) = (i64::MAX, i64::MIN);
    for i in 0..n {
        let (tc, pc) = cell_coords(scratch.theta[i], scratch.phi[i], u_theta, u_phi);
        tc_min = tc_min.min(tc);
        tc_max = tc_max.max(tc);
        pc_min = pc_min.min(pc);
        pc_max = pc_max.max(pc);
    }
    if n == 0 {
        scratch.cell_start.clear();
        scratch.cell_start.push(0);
        scratch.cell_pts.clear();
        return GridKind::Dense { w: 0, h: 0, tc_min: 0, pc_min: 0 };
    }
    // Memory bound for the dense grid: a few dozen cells per point covers
    // every real scan pattern; beyond that the grid is mostly empty and the
    // hash map is the better structure.
    let cap = (n as i64).saturating_mul(64).saturating_add(4096).min(1 << 22);
    let (w, h) = (tc_max - tc_min + 1, pc_max - pc_min + 1);
    let cells = w.checked_mul(h).filter(|&c| c <= cap);
    let Some(n_cells) = cells else {
        let mut map: FxHashMap<(i64, i64), Vec<u32>> = FxHashMap::default();
        for i in 0..n {
            let key = cell_coords(scratch.theta[i], scratch.phi[i], u_theta, u_phi);
            map.entry(key).or_default().push(i as u32);
        }
        return GridKind::Hash(map);
    };
    // Counting sort into CSR. Rows are φ so the 3–4 θ-adjacent cells each
    // extend query touches per row are contiguous.
    let n_cells = n_cells as usize;
    let cell_id = |i: usize| -> usize {
        let (tc, pc) = cell_coords(scratch.theta[i], scratch.phi[i], u_theta, u_phi);
        ((pc - pc_min) * w + (tc - tc_min)) as usize
    };
    scratch.cell_start.clear();
    scratch.cell_start.resize(n_cells + 1, 0);
    for i in 0..n {
        scratch.cell_start[cell_id(i) + 1] += 1;
    }
    for c in 1..=n_cells {
        scratch.cell_start[c] += scratch.cell_start[c - 1];
    }
    scratch.cell_pts.clear();
    scratch.cell_pts.resize(n, 0);
    for i in 0..n {
        let c = cell_id(i);
        scratch.cell_pts[scratch.cell_start[c] as usize] = i as u32;
        scratch.cell_start[c] += 1;
    }
    // The scatter shifted each start to its cell's end; shift back.
    for c in (1..=n_cells).rev() {
        scratch.cell_start[c] = scratch.cell_start[c - 1];
    }
    scratch.cell_start[0] = 0;
    GridKind::Dense { w, h, tc_min, pc_min }
}

/// Run Algorithm 1 over a group of sparse points.
///
/// * `spherical` — the group's points in spherical coordinates;
/// * `cartesian` — the same points in Cartesian coordinates (for the
///   Euclidean tie-break in the Extend routine);
/// * `u_theta`, `u_phi` — sensor sample spacings;
/// * `min_len` — minimum polyline length; shorter ones become outliers.
pub fn organize_sparse_points(
    spherical: &[Spherical],
    cartesian: &[Point3],
    u_theta: f64,
    u_phi: f64,
    min_len: usize,
) -> Organized {
    organize_sparse_points_with(
        spherical,
        cartesian,
        u_theta,
        u_phi,
        min_len,
        &mut OrganizeScratch::default(),
    )
}

/// [`organize_sparse_points`] with caller-owned [`OrganizeScratch`], so a
/// group loop pays for the grid and staging allocations once. The result is
/// identical for any scratch state.
pub fn organize_sparse_points_with(
    spherical: &[Spherical],
    cartesian: &[Point3],
    u_theta: f64,
    u_phi: f64,
    min_len: usize,
    scratch: &mut OrganizeScratch,
) -> Organized {
    let mut out = Organized::default();
    organize_sparse_points_into(spherical, cartesian, u_theta, u_phi, min_len, scratch, &mut out);
    out
}

/// [`organize_sparse_points_with`] writing into a caller-owned [`Organized`]:
/// `out`'s previous polyline vectors are recycled through the scratch's line
/// pool, so a warm (scratch, out) pair organizes a group without allocating.
/// The result is identical for any prior `out`/scratch state.
pub fn organize_sparse_points_into(
    spherical: &[Spherical],
    cartesian: &[Point3],
    u_theta: f64,
    u_phi: f64,
    min_len: usize,
    scratch: &mut OrganizeScratch,
    out: &mut Organized,
) {
    assert_eq!(spherical.len(), cartesian.len());
    assert!(u_theta > 0.0 && u_phi > 0.0, "sample spacings must be positive");
    let n = spherical.len();
    scratch.theta.clear();
    scratch.theta.extend(spherical.iter().map(|s| s.theta));
    scratch.phi.clear();
    scratch.phi.extend(spherical.iter().map(|s| s.phi));
    let grid = build_grid(scratch, u_theta, u_phi);
    let OrganizeScratch { theta, phi, cell_start, cell_pts, used, right, left, line_pool } =
        scratch;
    let (theta, phi) = (theta.as_slice(), phi.as_slice());
    let (cell_start, cell_pts) = (cell_start.as_slice(), cell_pts.as_slice());
    used.clear();
    used.resize(n, false);
    // Recycle the previous output's line vectors instead of dropping them.
    line_pool.extend(out.polylines.drain(..).map(|mut line| {
        line.clear();
        line
    }));
    out.outliers.clear();
    let result = out;
    let two_ut = 2.0 * u_theta;

    // Extend from `from` in direction `dir` (+1 right, -1 left); returns the
    // chosen next point, if any.
    let extend = |used: &[bool], from: u32, dir: f64, phi_lo: f64, phi_hi: f64| -> Option<u32> {
        let s_theta = theta[from as usize];
        let (t_lo, t_hi) =
            if dir > 0.0 { (s_theta, s_theta + two_ut) } else { (s_theta - two_ut, s_theta) };
        let p = cartesian[from as usize];
        let mut best_d = f64::INFINITY;
        let mut best_i = u32::MAX;
        let mut visit = |cand: u32| {
            if used[cand as usize] || cand == from {
                return;
            }
            // Strict on the near side, inclusive on the far side.
            let dt = (theta[cand as usize] - s_theta) * dir;
            if dt <= 0.0 || dt > two_ut {
                return;
            }
            let cp = phi[cand as usize];
            if cp < phi_lo || cp > phi_hi {
                return;
            }
            let d = p.dist2(cartesian[cand as usize]);
            // Deterministic tie-break on index (which also makes the result
            // independent of candidate visit order, so the dense and hash
            // grids organize identically).
            if d < best_d || (d == best_d && cand < best_i) {
                best_d = d;
                best_i = cand;
            }
        };
        let (tc_lo, tc_hi) = ((t_lo / u_theta).floor() as i64, (t_hi / u_theta).floor() as i64);
        let (pc_lo, pc_hi) = ((phi_lo / u_phi).floor() as i64, (phi_hi / u_phi).floor() as i64);
        match &grid {
            GridKind::Dense { w, h, tc_min, pc_min } => {
                let (tc_lo, tc_hi) = ((tc_lo - tc_min).max(0), (tc_hi - tc_min).min(w - 1));
                let (pc_lo, pc_hi) = ((pc_lo - pc_min).max(0), (pc_hi - pc_min).min(h - 1));
                for pc in pc_lo..=pc_hi {
                    let row = pc * w;
                    for tc in tc_lo..=tc_hi {
                        let c = (row + tc) as usize;
                        for &i in &cell_pts[cell_start[c] as usize..cell_start[c + 1] as usize] {
                            visit(i);
                        }
                    }
                }
            }
            GridKind::Hash(map) => {
                for tc in tc_lo..=tc_hi {
                    for pc in pc_lo..=pc_hi {
                        if let Some(v) = map.get(&(tc, pc)) {
                            for &i in v {
                                visit(i);
                            }
                        }
                    }
                }
            }
        }
        (best_i != u32::MAX).then_some(best_i)
    };

    for seed in 0..n as u32 {
        if used[seed as usize] {
            continue;
        }
        used[seed as usize] = true;
        let (phi_lo, phi_hi) = (phi[seed as usize] - u_phi, phi[seed as usize] + u_phi);
        right.clear();
        right.push(seed);
        let mut tail = seed;
        while let Some(nx) = extend(used, tail, 1.0, phi_lo, phi_hi) {
            used[nx as usize] = true;
            right.push(nx);
            tail = nx;
        }
        left.clear();
        let mut head = seed;
        while let Some(nx) = extend(used, head, -1.0, phi_lo, phi_hi) {
            used[nx as usize] = true;
            left.push(nx);
            head = nx;
        }
        let len = left.len() + right.len();
        if len >= min_len {
            let mut line = line_pool.pop().unwrap_or_default();
            line.reserve(len);
            line.extend(left.iter().rev());
            line.extend_from_slice(right);
            result.polylines.push(line);
        } else {
            result.outliers.extend(left.iter().rev());
            result.outliers.extend_from_slice(right);
        }
    }

    // Sort polylines by (polar angle of head, azimuthal angle of head). The
    // head index breaks exact angle ties, making the unstable sort a total
    // (and therefore deterministic) order.
    result.polylines.sort_unstable_by(|a, b| {
        let (ha, hb) = (a[0] as usize, b[0] as usize);
        phi[ha].total_cmp(&phi[hb]).then(theta[ha].total_cmp(&theta[hb])).then(a[0].cmp(&b[0]))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build spherical + cartesian arrays from (θ, φ, r) triples.
    fn points(triples: &[(f64, f64, f64)]) -> (Vec<Spherical>, Vec<Point3>) {
        let sph: Vec<Spherical> =
            triples.iter().map(|&(t, p, r)| Spherical::new(t, p, r)).collect();
        let cart = sph.iter().map(|s| s.to_cartesian()).collect();
        (sph, cart)
    }

    const U_T: f64 = 0.003;
    const U_P: f64 = 0.007;

    #[test]
    fn single_ring_becomes_one_polyline() {
        let triples: Vec<(f64, f64, f64)> = (0..50).map(|i| (i as f64 * U_T, 1.6, 10.0)).collect();
        let (sph, cart) = points(&triples);
        let org = organize_sparse_points(&sph, &cart, U_T, U_P, 3);
        assert_eq!(org.polylines.len(), 1);
        assert_eq!(org.polylines[0].len(), 50);
        assert!(org.outliers.is_empty());
        // Left-to-right order.
        let line = &org.polylines[0];
        for w in line.windows(2) {
            assert!(sph[w[0] as usize].theta < sph[w[1] as usize].theta);
        }
    }

    #[test]
    fn gap_splits_polyline() {
        // 20 points, a gap > 2·u_θ in the middle.
        let mut triples: Vec<(f64, f64, f64)> =
            (0..10).map(|i| (i as f64 * U_T, 1.6, 10.0)).collect();
        triples.extend((0..10).map(|i| (0.2 + i as f64 * U_T, 1.6, 10.0)));
        let (sph, cart) = points(&triples);
        let org = organize_sparse_points(&sph, &cart, U_T, U_P, 3);
        assert_eq!(org.polylines.len(), 2);
    }

    #[test]
    fn phi_band_rejects_other_rings() {
        // Two rings separated by 3·u_φ: never merged.
        let mut triples: Vec<(f64, f64, f64)> =
            (0..20).map(|i| (i as f64 * U_T, 1.6, 10.0)).collect();
        triples.extend((0..20).map(|i| (i as f64 * U_T, 1.6 + 3.0 * U_P, 12.0)));
        let (sph, cart) = points(&triples);
        let org = organize_sparse_points(&sph, &cart, U_T, U_P, 3);
        assert_eq!(org.polylines.len(), 2);
        assert_eq!(org.polylines[0].len(), 20);
        // Sorted by polar angle of head.
        assert!(sph[org.polylines[0][0] as usize].phi < sph[org.polylines[1][0] as usize].phi);
    }

    #[test]
    fn isolated_points_are_outliers() {
        let triples = [(0.0, 1.6, 10.0), (0.5, 1.2, 20.0), (-0.7, 1.9, 30.0)];
        let (sph, cart) = points(&triples);
        let org = organize_sparse_points(&sph, &cart, U_T, U_P, 3);
        assert!(org.polylines.is_empty());
        assert_eq!(org.outliers.len(), 3);
    }

    #[test]
    fn left_extension_from_middle_seed() {
        // Seed iteration order is input order; put the middle point first so
        // the polyline must grow in both directions.
        let mut triples = vec![(25.0 * U_T, 1.6, 10.0)];
        triples.extend((0..50).filter(|&i| i != 25).map(|i| (i as f64 * U_T, 1.6, 10.0)));
        let (sph, cart) = points(&triples);
        let org = organize_sparse_points(&sph, &cart, U_T, U_P, 3);
        assert_eq!(org.polylines.len(), 1);
        assert_eq!(org.polylines[0].len(), 50);
    }

    #[test]
    fn nearest_candidate_wins() {
        // Two candidates in the Δθ window; the nearer (in 3D) is chosen.
        let triples = [
            (0.0, 1.6, 10.0),
            (1.2 * U_T, 1.6, 10.05), // near in r
            (1.0 * U_T, 1.6, 14.0),  // same band, farther in r
            (2.4 * U_T, 1.6, 10.1),  // continues the line
        ];
        let (sph, cart) = points(&triples);
        let org = organize_sparse_points(&sph, &cart, U_T, U_P, 2);
        // First polyline should contain points 0, 1, 3 in order.
        let main: &Vec<u32> =
            org.polylines.iter().find(|l| l.contains(&0)).expect("line through point 0");
        assert_eq!(main, &vec![0, 1, 3]);
    }

    #[test]
    fn empty_input() {
        let org = organize_sparse_points(&[], &[], U_T, U_P, 3);
        assert!(org.polylines.is_empty() && org.outliers.is_empty());
    }

    /// Structural equality of two organizations.
    fn assert_same(a: &Organized, b: &Organized) {
        assert_eq!(a.polylines, b.polylines);
        assert_eq!(a.outliers, b.outliers);
    }

    #[test]
    fn reused_scratch_is_identical() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut scratch = OrganizeScratch::default();
        for round in 0..4 {
            let triples: Vec<(f64, f64, f64)> = (0..500 + round * 100)
                .map(|_| {
                    (rng.gen_range(-3.0..3.0), rng.gen_range(1.5..2.0), rng.gen_range(5.0..60.0))
                })
                .collect();
            let (sph, cart) = points(&triples);
            let fresh = organize_sparse_points(&sph, &cart, U_T, U_P, 3);
            let reused = organize_sparse_points_with(&sph, &cart, U_T, U_P, 3, &mut scratch);
            assert_same(&fresh, &reused);
        }
    }

    #[test]
    fn wide_angle_spread_falls_back_to_hash_grid() {
        // A few points scattered over a huge θ range make a dense grid
        // mostly empty, so the hash fallback kicks in; the organization must
        // be the one the dense grid would produce (here: a run of three
        // consecutive points plus two far outliers).
        let mut triples = vec![(1e6 * U_T, 1.6, 10.0), (-1e6 * U_T, 1.6, 10.0)];
        triples.extend((0..3).map(|i| (i as f64 * U_T, 1.6, 10.0)));
        let (sph, cart) = points(&triples);
        let org = organize_sparse_points(&sph, &cart, U_T, U_P, 3);
        assert_eq!(org.polylines, vec![vec![2, 3, 4]]);
        assert_eq!(org.outliers, vec![0, 1]);
    }

    #[test]
    fn all_points_accounted_for() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(90);
        let triples: Vec<(f64, f64, f64)> = (0..2000)
            .map(|_| (rng.gen_range(-3.0..3.0), rng.gen_range(1.5..2.0), rng.gen_range(5.0..60.0)))
            .collect();
        let (sph, cart) = points(&triples);
        let org = organize_sparse_points(&sph, &cart, U_T, U_P, 3);
        let total = org.polyline_points() + org.outliers.len();
        assert_eq!(total, 2000);
        // No index appears twice.
        let mut seen = vec![false; 2000];
        for &i in org.polylines.iter().flatten().chain(&org.outliers) {
            assert!(!seen[i as usize], "duplicate index {i}");
            seen[i as usize] = true;
        }
    }
}
