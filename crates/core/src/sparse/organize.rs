//! Point organization: Algorithm 1 of the paper (§3.4).
//!
//! Sparse points are organized into near-horizontal polylines in `(θ, φ)`
//! space. A polyline starts at a seed point; its polar band is fixed to the
//! seed's `φ ± u_φ`; it is extended to the right (and then to the left) by
//! repeatedly picking, among the points with `0 < Δθ <= 2·u_θ` inside the
//! band, the one closest in 3D Euclidean distance. Points on polylines
//! shorter than the configured minimum become *outliers*.
//!
//! Organization runs on the encoder only; any deterministic result is valid,
//! so this module is free to use floating-point angles directly.

use dbgc_geom::{FxHashMap, Point3, Spherical};

/// The organized output: polyline point indices (into the group's point
/// array) and leftover outlier indices.
#[derive(Debug, Clone, Default)]
pub struct Organized {
    /// Polylines, sorted by (polar angle of head, azimuthal angle of head).
    /// Each polyline lists point indices left-to-right (ascending θ).
    pub polylines: Vec<Vec<u32>>,
    /// Points not on any (sufficiently long) polyline.
    pub outliers: Vec<u32>,
}

impl Organized {
    /// Total number of points on polylines.
    pub fn polyline_points(&self) -> usize {
        self.polylines.iter().map(Vec::len).sum()
    }
}

/// Angle-space grid for candidate queries.
struct AngleGrid {
    cells: FxHashMap<(i64, i64), Vec<u32>>,
    u_theta: f64,
    u_phi: f64,
}

impl AngleGrid {
    fn build(points: &[Spherical], u_theta: f64, u_phi: f64) -> AngleGrid {
        let mut cells: FxHashMap<(i64, i64), Vec<u32>> = FxHashMap::default();
        for (i, s) in points.iter().enumerate() {
            cells.entry(Self::cell(s.theta, s.phi, u_theta, u_phi)).or_default().push(i as u32);
        }
        AngleGrid { cells, u_theta, u_phi }
    }

    #[inline]
    fn cell(theta: f64, phi: f64, u_theta: f64, u_phi: f64) -> (i64, i64) {
        ((theta / u_theta).floor() as i64, (phi / u_phi).floor() as i64)
    }

    /// Visit unused candidate indices with θ in `(theta_lo, theta_hi)`
    /// exclusive/inclusive handled by the caller's filter.
    fn for_candidates(
        &self,
        theta_lo: f64,
        theta_hi: f64,
        phi_lo: f64,
        phi_hi: f64,
        mut f: impl FnMut(u32),
    ) {
        let tc_lo = (theta_lo / self.u_theta).floor() as i64;
        let tc_hi = (theta_hi / self.u_theta).floor() as i64;
        let pc_lo = (phi_lo / self.u_phi).floor() as i64;
        let pc_hi = (phi_hi / self.u_phi).floor() as i64;
        for tc in tc_lo..=tc_hi {
            for pc in pc_lo..=pc_hi {
                if let Some(v) = self.cells.get(&(tc, pc)) {
                    for &i in v {
                        f(i);
                    }
                }
            }
        }
    }
}

/// Run Algorithm 1 over a group of sparse points.
///
/// * `spherical` — the group's points in spherical coordinates;
/// * `cartesian` — the same points in Cartesian coordinates (for the
///   Euclidean tie-break in the Extend routine);
/// * `u_theta`, `u_phi` — sensor sample spacings;
/// * `min_len` — minimum polyline length; shorter ones become outliers.
pub fn organize_sparse_points(
    spherical: &[Spherical],
    cartesian: &[Point3],
    u_theta: f64,
    u_phi: f64,
    min_len: usize,
) -> Organized {
    assert_eq!(spherical.len(), cartesian.len());
    assert!(u_theta > 0.0 && u_phi > 0.0, "sample spacings must be positive");
    let n = spherical.len();
    let grid = AngleGrid::build(spherical, u_theta, u_phi);
    let mut used = vec![false; n];
    let mut result = Organized::default();

    // Extend from `from` in direction `dir` (+1 right, -1 left); returns the
    // chosen next point, if any.
    let extend = |used: &[bool], from: u32, dir: f64, phi_lo: f64, phi_hi: f64| -> Option<u32> {
        let sp = spherical[from as usize];
        let (t_lo, t_hi) = if dir > 0.0 {
            (sp.theta, sp.theta + 2.0 * u_theta)
        } else {
            (sp.theta - 2.0 * u_theta, sp.theta)
        };
        let p = cartesian[from as usize];
        let mut best: Option<(f64, u32)> = None;
        grid.for_candidates(t_lo, t_hi, phi_lo, phi_hi, |cand| {
            if used[cand as usize] || cand == from {
                return;
            }
            let cs = spherical[cand as usize];
            // Strict on the near side, inclusive on the far side.
            let dt = (cs.theta - sp.theta) * dir;
            if dt <= 0.0 || dt > 2.0 * u_theta {
                return;
            }
            if cs.phi < phi_lo || cs.phi > phi_hi {
                return;
            }
            let d = p.dist2(cartesian[cand as usize]);
            // Deterministic tie-break on index.
            if best.map_or(true, |(bd, bi)| d < bd || (d == bd && cand < bi)) {
                best = Some((d, cand));
            }
        });
        best.map(|(_, i)| i)
    };

    for seed in 0..n as u32 {
        if used[seed as usize] {
            continue;
        }
        used[seed as usize] = true;
        let sp = spherical[seed as usize];
        let (phi_lo, phi_hi) = (sp.phi - u_phi, sp.phi + u_phi);
        let mut line = vec![seed];
        // Extend right.
        let mut tail = seed;
        while let Some(nx) = extend(&used, tail, 1.0, phi_lo, phi_hi) {
            used[nx as usize] = true;
            line.push(nx);
            tail = nx;
        }
        // Extend left (prepend).
        let mut head = seed;
        let mut left = Vec::new();
        while let Some(nx) = extend(&used, head, -1.0, phi_lo, phi_hi) {
            used[nx as usize] = true;
            left.push(nx);
            head = nx;
        }
        if !left.is_empty() {
            left.reverse();
            left.extend_from_slice(&line);
            line = left;
        }
        if line.len() >= min_len {
            result.polylines.push(line);
        } else {
            result.outliers.extend(line);
        }
    }

    // Sort polylines by (polar angle of head, azimuthal angle of head). The
    // head index breaks exact angle ties, making the unstable sort a total
    // (and therefore deterministic) order.
    result.polylines.sort_unstable_by(|a, b| {
        let (sa, sb) = (spherical[a[0] as usize], spherical[b[0] as usize]);
        sa.phi.total_cmp(&sb.phi).then(sa.theta.total_cmp(&sb.theta)).then(a[0].cmp(&b[0]))
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build spherical + cartesian arrays from (θ, φ, r) triples.
    fn points(triples: &[(f64, f64, f64)]) -> (Vec<Spherical>, Vec<Point3>) {
        let sph: Vec<Spherical> =
            triples.iter().map(|&(t, p, r)| Spherical::new(t, p, r)).collect();
        let cart = sph.iter().map(|s| s.to_cartesian()).collect();
        (sph, cart)
    }

    const U_T: f64 = 0.003;
    const U_P: f64 = 0.007;

    #[test]
    fn single_ring_becomes_one_polyline() {
        let triples: Vec<(f64, f64, f64)> = (0..50).map(|i| (i as f64 * U_T, 1.6, 10.0)).collect();
        let (sph, cart) = points(&triples);
        let org = organize_sparse_points(&sph, &cart, U_T, U_P, 3);
        assert_eq!(org.polylines.len(), 1);
        assert_eq!(org.polylines[0].len(), 50);
        assert!(org.outliers.is_empty());
        // Left-to-right order.
        let line = &org.polylines[0];
        for w in line.windows(2) {
            assert!(sph[w[0] as usize].theta < sph[w[1] as usize].theta);
        }
    }

    #[test]
    fn gap_splits_polyline() {
        // 20 points, a gap > 2·u_θ in the middle.
        let mut triples: Vec<(f64, f64, f64)> =
            (0..10).map(|i| (i as f64 * U_T, 1.6, 10.0)).collect();
        triples.extend((0..10).map(|i| (0.2 + i as f64 * U_T, 1.6, 10.0)));
        let (sph, cart) = points(&triples);
        let org = organize_sparse_points(&sph, &cart, U_T, U_P, 3);
        assert_eq!(org.polylines.len(), 2);
    }

    #[test]
    fn phi_band_rejects_other_rings() {
        // Two rings separated by 3·u_φ: never merged.
        let mut triples: Vec<(f64, f64, f64)> =
            (0..20).map(|i| (i as f64 * U_T, 1.6, 10.0)).collect();
        triples.extend((0..20).map(|i| (i as f64 * U_T, 1.6 + 3.0 * U_P, 12.0)));
        let (sph, cart) = points(&triples);
        let org = organize_sparse_points(&sph, &cart, U_T, U_P, 3);
        assert_eq!(org.polylines.len(), 2);
        assert_eq!(org.polylines[0].len(), 20);
        // Sorted by polar angle of head.
        assert!(sph[org.polylines[0][0] as usize].phi < sph[org.polylines[1][0] as usize].phi);
    }

    #[test]
    fn isolated_points_are_outliers() {
        let triples = [(0.0, 1.6, 10.0), (0.5, 1.2, 20.0), (-0.7, 1.9, 30.0)];
        let (sph, cart) = points(&triples);
        let org = organize_sparse_points(&sph, &cart, U_T, U_P, 3);
        assert!(org.polylines.is_empty());
        assert_eq!(org.outliers.len(), 3);
    }

    #[test]
    fn left_extension_from_middle_seed() {
        // Seed iteration order is input order; put the middle point first so
        // the polyline must grow in both directions.
        let mut triples = vec![(25.0 * U_T, 1.6, 10.0)];
        triples.extend((0..50).filter(|&i| i != 25).map(|i| (i as f64 * U_T, 1.6, 10.0)));
        let (sph, cart) = points(&triples);
        let org = organize_sparse_points(&sph, &cart, U_T, U_P, 3);
        assert_eq!(org.polylines.len(), 1);
        assert_eq!(org.polylines[0].len(), 50);
    }

    #[test]
    fn nearest_candidate_wins() {
        // Two candidates in the Δθ window; the nearer (in 3D) is chosen.
        let triples = [
            (0.0, 1.6, 10.0),
            (1.2 * U_T, 1.6, 10.05), // near in r
            (1.0 * U_T, 1.6, 14.0),  // same band, farther in r
            (2.4 * U_T, 1.6, 10.1),  // continues the line
        ];
        let (sph, cart) = points(&triples);
        let org = organize_sparse_points(&sph, &cart, U_T, U_P, 2);
        // First polyline should contain points 0, 1, 3 in order.
        let main: &Vec<u32> =
            org.polylines.iter().find(|l| l.contains(&0)).expect("line through point 0");
        assert_eq!(main, &vec![0, 1, 3]);
    }

    #[test]
    fn empty_input() {
        let org = organize_sparse_points(&[], &[], U_T, U_P, 3);
        assert!(org.polylines.is_empty() && org.outliers.is_empty());
    }

    #[test]
    fn all_points_accounted_for() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(90);
        let triples: Vec<(f64, f64, f64)> = (0..2000)
            .map(|_| (rng.gen_range(-3.0..3.0), rng.gen_range(1.5..2.0), rng.gen_range(5.0..60.0)))
            .collect();
        let (sph, cart) = points(&triples);
        let org = organize_sparse_points(&sph, &cart, U_T, U_P, 3);
        let total = org.polyline_points() + org.outliers.len();
        assert_eq!(total, 2000);
        // No index appears twice.
        let mut seen = vec![false; 2000];
        for &i in org.polylines.iter().flatten().chain(&org.outliers) {
            assert!(!seen[i as usize], "duplicate index {i}");
            seen[i as usize] = true;
        }
    }
}
