//! Structural stream layout: header parsing, section spans, and
//! section-granular decode helpers.
//!
//! The decompressor consumes a stream sequentially, but every section is
//! independently decodable given its byte span: the dense octree section is
//! length-prefixed, each sparse group starts with its `r_max` and contains
//! only self-delimiting frames, and the outlier section is tagged and
//! self-delimiting. This module exposes that structure so partial decoders
//! (see the `dbgc-store` crate) can seek straight to the sections a query
//! needs, re-initialising entropy-coder state per section, while
//! [`decompress`](crate::decompress()) reuses the same helpers for its
//! sequential walk — one implementation, byte-identical results.

use std::ops::Range;

use dbgc_codec::varint::ByteReader;
use dbgc_geom::quant::SphericalQuant;
use dbgc_geom::{Point3, PointCloud};
use dbgc_octree::{OctreeCodec, OctreeDecodeResult};

use crate::outlier::decode_outliers;
use dbgc_codec::EntropyProfile;

use crate::pipeline::{FLAG_RADIAL, FLAG_SPHERICAL, MAGIC, VERSION, VERSION_DUAL, VERSION_WIDE};
use crate::sparse::codec::{decode_group_with_limit, GroupCodecConfig};
use crate::DbgcError;

/// Parsed and validated stream header fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamHeader {
    /// Stream format version (1; 2 for dual-lane dense sections; 3 for the
    /// wide entropy profile: four-lane dense occupancy and sparse frames).
    pub version: u8,
    /// Per-axis Cartesian error bound the stream was encoded with.
    pub q_xyz: f64,
    /// Sensor azimuthal spacing `u_θ`.
    pub u_theta: f64,
    /// Sensor polar spacing `u_φ`.
    pub u_phi: f64,
    /// Radial threshold `TH_r` in metres.
    pub th_r: f64,
    /// Sparse channels are spherical (vs the −Conversion ablation).
    pub spherical: bool,
    /// Radial-distance-optimized channel-3 encoding in use.
    pub radial: bool,
    /// Number of sparse groups.
    pub n_groups: usize,
    /// Total point count declared by the header.
    pub declared_points: usize,
    /// Bytes the header occupies; sections start at this offset.
    pub header_len: usize,
}

impl StreamHeader {
    /// Whether the dense section uses the two-lane occupancy coder.
    pub fn dual_lane(&self) -> bool {
        self.version == VERSION_DUAL
    }

    /// Whether the stream uses the wide (four-lane) entropy profile.
    pub fn wide(&self) -> bool {
        self.version == VERSION_WIDE
    }

    /// The entropy profile the stream version encodes.
    pub fn profile(&self) -> EntropyProfile {
        match self.version {
            VERSION_DUAL => EntropyProfile::Dual,
            VERSION_WIDE => EntropyProfile::Wide,
            _ => EntropyProfile::Narrow,
        }
    }
}

/// Parse and validate the stream header of `body` (a stream with any index
/// trailer already stripped). Fails on exactly the malformed headers
/// [`decompress`](crate::decompress()) rejects.
pub fn parse_header(body: &[u8]) -> Result<StreamHeader, DbgcError> {
    let mut r = ByteReader::new(body);
    let magic = r.read_slice(4).map_err(|_| DbgcError::BadHeader("missing magic"))?;
    if magic != MAGIC {
        return Err(DbgcError::BadHeader("wrong magic"));
    }
    let version = r.read_u8().map_err(|_| DbgcError::BadHeader("missing version"))?;
    if version != VERSION && version != VERSION_DUAL && version != VERSION_WIDE {
        return Err(DbgcError::BadHeader("unsupported version"));
    }
    let q_xyz = r.read_f64().map_err(DbgcError::from)?;
    // The upper cap (a billion-kilometre error bound) keeps every derived
    // quantization step small enough that dequantized coordinates stay
    // finite for any i64 quantized value.
    if q_xyz.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || q_xyz > 1e12 {
        return Err(DbgcError::BadHeader("invalid error bound"));
    }
    let u_theta = r.read_f64().map_err(DbgcError::from)?;
    let u_phi = r.read_f64().map_err(DbgcError::from)?;
    let th_r = r.read_f64().map_err(DbgcError::from)?;
    let flags = r.read_u8().map_err(DbgcError::from)?;
    let n_groups = r.read_uvarint().map_err(DbgcError::from)? as usize;
    let declared_points = r.read_uvarint().map_err(DbgcError::from)? as usize;
    // Every group carries at least its 8-byte r_max, and every point costs
    // coded payload, so both counts are bounded by the input size. The
    // absolute point ceiling is far above any real LiDAR frame.
    if n_groups > r.remaining() / 8 || declared_points > point_budget(body.len()) {
        return Err(DbgcError::BadHeader("implausible header counts"));
    }
    Ok(StreamHeader {
        version,
        q_xyz,
        u_theta,
        u_phi,
        th_r,
        spherical: flags & FLAG_SPHERICAL != 0,
        radial: flags & FLAG_RADIAL != 0,
        n_groups,
        declared_points,
        header_len: r.position(),
    })
}

/// Decoded-point budget for a stream of `len` bytes.
///
/// Every coded point costs payload (range-coded symbols are bounded by
/// [`dbgc_codec::intseq`]'s entropy floor), so a generous per-byte ratio plus
/// an absolute ceiling rejects hostile headers without touching any stream a
/// real compressor can produce.
pub(crate) fn point_budget(len: usize) -> usize {
    len.saturating_mul(2048).min(dbgc_octree::DEFAULT_MAX_POINTS)
}

/// Byte ranges of the sections of one stream body, from a structural walk of
/// the framing (no point data is decoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionSpans {
    /// The dense octree section, including its length prefix.
    pub dense: Range<usize>,
    /// One span per sparse group, starting at the group's `r_max`.
    pub groups: Vec<Range<usize>>,
    /// The outlier section (mode tag through end of body).
    pub outlier: Range<usize>,
}

/// Walk the section framing of `body` and return each section's byte span.
///
/// Cheap (microseconds) even for large frames: only lengths are read. Fails
/// on framing a sequential decode would also reject.
pub fn section_spans(body: &[u8], h: &StreamHeader) -> Result<SectionSpans, DbgcError> {
    let mut r = ByteReader::new(&body[h.header_len.min(body.len())..]);
    let base = h.header_len;

    let dense_start = base;
    let dense_len = r.read_uvarint().map_err(DbgcError::from)? as usize;
    r.read_slice(dense_len).map_err(DbgcError::from)?;
    let dense = dense_start..base + r.position();

    // Sparse groups: r_max + frames. Frames are self-delimiting
    // (count | raw_len | coded_len | payload); skip by reading lengths.
    let frames_per_group = 5 + if h.radial { 3 } else { 2 };
    let mut groups = Vec::with_capacity(h.n_groups.min(body.len() / 8));
    for _ in 0..h.n_groups {
        let start = base + r.position();
        let _r_max = r.read_f64().map_err(DbgcError::from)?;
        for _ in 0..frames_per_group {
            let _count = r.read_uvarint().map_err(DbgcError::from)?;
            let _raw = r.read_uvarint().map_err(DbgcError::from)?;
            let coded = r.read_uvarint().map_err(DbgcError::from)? as usize;
            r.read_slice(coded).map_err(DbgcError::from)?;
        }
        groups.push(start..base + r.position());
    }
    let outlier = base + r.position()..body.len();
    Ok(SectionSpans { dense, groups, outlier })
}

/// Codec configuration and (in spherical mode) the quantizer for one group,
/// derived from the header and the group's `r_max` exactly as the sequential
/// decoder derives them.
pub fn group_codec_cfg(h: &StreamHeader, r_max: f64) -> (GroupCodecConfig, Option<SphericalQuant>) {
    if h.spherical {
        let sq = SphericalQuant::from_error_bound(h.q_xyz, r_max);
        (
            GroupCodecConfig {
                radial: h.radial,
                wide: h.wide(),
                th_phi: (2.0 * h.u_phi / sq.angle_step()).round() as i64,
                th_r: (h.th_r / sq.r_step()).round() as i64,
            },
            Some(sq),
        )
    } else {
        (GroupCodecConfig { radial: false, wide: h.wide(), th_phi: 1, th_r: 1 }, None)
    }
}

/// Read and validate one group's `r_max`.
pub fn read_group_r_max(r: &mut ByteReader<'_>) -> Result<f64, DbgcError> {
    let r_max = r.read_f64().map_err(DbgcError::from)?;
    if !r_max.is_finite() || !(0.0..=1e12).contains(&r_max) {
        return Err(DbgcError::BadHeader("invalid group r_max"));
    }
    Ok(r_max)
}

/// Materialize decoded quantized polylines into Cartesian points, exactly as
/// the sequential decoder does (bit-identical `f64` results).
pub fn push_dequantized(
    lines: &[Vec<[i64; 3]>],
    sq: Option<&SphericalQuant>,
    q_xyz: f64,
    cloud: &mut PointCloud,
) {
    match sq {
        Some(sq) => {
            for line in lines {
                for &p in line {
                    cloud.push(sq.dequantize(p).to_cartesian());
                }
            }
        }
        None => {
            let step = 2.0 * q_xyz;
            for line in lines {
                for &p in line {
                    cloud.push(Point3::new(
                        p[0] as f64 * step,
                        p[1] as f64 * step,
                        p[2] as f64 * step,
                    ));
                }
            }
        }
    }
}

/// Decode the dense octree section from a reader positioned at its length
/// prefix. `max_points` bounds the decoded count (typed error beyond it).
pub fn read_dense(
    r: &mut ByteReader<'_>,
    h: &StreamHeader,
    max_points: usize,
) -> Result<OctreeDecodeResult, DbgcError> {
    let dense_len = r.read_uvarint().map_err(DbgcError::from)? as usize;
    let dense_bytes = r.read_slice(dense_len).map_err(DbgcError::from)?;
    Ok(OctreeCodec::baseline()
        .with_profile(h.profile())
        .decode_with_limit(dense_bytes, max_points)?)
}

/// Decode the dense section from its byte span (as reported by
/// [`section_spans`]), returning the points and the octree depth.
///
/// The span must be exactly the section: trailing bytes are rejected, so a
/// directory pointing mid-stream cannot silently mis-frame the decode.
pub fn decode_dense_span(
    span: &[u8],
    h: &StreamHeader,
    max_points: usize,
) -> Result<(Vec<Point3>, u32), DbgcError> {
    let mut r = ByteReader::new(span);
    let res = read_dense(&mut r, h, max_points)?;
    if !r.is_empty() {
        return Err(DbgcError::BadHeader("trailing bytes after dense section"));
    }
    Ok((res.points, res.depth))
}

/// Decode one sparse group from its byte span (starting at `r_max`),
/// materialized to Cartesian points. Entropy-coder state is initialized
/// fresh from the span, so groups decode independently of one another.
pub fn decode_group_span(
    span: &[u8],
    h: &StreamHeader,
    max_points: usize,
) -> Result<Vec<Point3>, DbgcError> {
    let mut r = ByteReader::new(span);
    let r_max = read_group_r_max(&mut r)?;
    let (cfg, sq) = group_codec_cfg(h, r_max);
    let lines = decode_group_with_limit(&mut r, &cfg, max_points)?;
    if !r.is_empty() {
        return Err(DbgcError::BadHeader("trailing bytes after group section"));
    }
    let mut cloud = PointCloud::new();
    push_dequantized(&lines, sq.as_ref(), h.q_xyz, &mut cloud);
    Ok(cloud.into_points())
}

/// Decode the outlier section from its byte span.
pub fn decode_outlier_span(
    span: &[u8],
    h: &StreamHeader,
    max_points: usize,
) -> Result<Vec<Point3>, DbgcError> {
    let mut r = ByteReader::new(span);
    let pts = decode_outliers(&mut r, h.q_xyz, max_points)?;
    if !r.is_empty() {
        return Err(DbgcError::BadHeader("trailing bytes after outlier section"));
    }
    Ok(pts)
}
