//! The DBGC compressor: clustering → octree → conversion → grouping →
//! organization → coordinate compression → outlier compression → layout
//! (paper §3, Fig. 2 client side).

use std::time::Instant;

use dbgc_clustering::{approx_cluster, cell_based_cluster, dbscan, DensitySplit};
use dbgc_codec::varint::{write_f64, write_uvarint};
use dbgc_geom::quant::{quantize, QuantParams, SphericalQuant};
use dbgc_geom::{Point3, PointCloud, Spherical};
use dbgc_octree::OctreeCodec;

use crate::config::{ClusteringAlgorithm, DbgcConfig, SplitStrategy};
use crate::outlier::encode_outliers;
use crate::sparse::codec::{encode_group, GroupCodecConfig};
use crate::sparse::organize::organize_sparse_points;
use crate::stats::{CompressionStats, SectionSizes, TimingBreakdown};
use crate::DbgcError;

/// Stream magic and version.
pub(crate) const MAGIC: [u8; 4] = *b"DBGC";
pub(crate) const VERSION: u8 = 1;

pub(crate) const FLAG_SPHERICAL: u8 = 0b01;
pub(crate) const FLAG_RADIAL: u8 = 0b10;

/// A compressed frame: the bitstream plus encoder-side metadata.
#[derive(Debug, Clone)]
pub struct CompressedFrame {
    /// The bit sequence `B`.
    pub bytes: Vec<u8>,
    /// One-to-one mapping: `mapping[i]` is the index of input point `i` in
    /// the decompressed cloud (paper problem statement condition 2).
    pub mapping: Vec<usize>,
    /// Sizes, counts and timing breakdown.
    pub stats: CompressionStats,
}

impl CompressedFrame {
    /// Compression ratio against 12-byte raw points.
    pub fn compression_ratio(&self) -> f64 {
        self.stats.compression_ratio()
    }
}

/// The DBGC compressor.
#[derive(Debug, Clone, Default)]
pub struct Dbgc {
    /// The configuration every `compress` call uses.
    pub config: DbgcConfig,
}

impl Dbgc {
    /// A compressor with an explicit configuration.
    pub fn new(config: DbgcConfig) -> Dbgc {
        Dbgc { config }
    }

    /// Paper defaults at the given error bound.
    pub fn with_error_bound(q_xyz: f64) -> Dbgc {
        Dbgc::new(DbgcConfig::with_error_bound(q_xyz))
    }

    /// Compress a point cloud into a DBGC bitstream.
    pub fn compress(&self, cloud: &PointCloud) -> Result<CompressedFrame, DbgcError> {
        let cfg = &self.config;
        cfg.validate().map_err(DbgcError::InvalidConfig)?;
        if let Some(i) = cloud.iter().position(|p| !p.is_finite()) {
            return Err(DbgcError::NonFinitePoint { index: i });
        }
        let points = cloud.points();
        let mut timing = TimingBreakdown::default();
        let mut sections = SectionSizes::default();

        // ---- DEN: dense/sparse split -----------------------------------
        let t = Instant::now();
        let split = self.split(points);
        timing.den = t.elapsed();
        let (dense_idx, sparse_idx) = split.partition_indices();
        let dense_pts: Vec<Point3> = dense_idx.iter().map(|&i| points[i]).collect();

        // ---- OCT: octree over dense points ------------------------------
        let t = Instant::now();
        let dense_enc = OctreeCodec::baseline().encode(&dense_pts, cfg.q_xyz);
        timing.oct = t.elapsed();

        // ---- COR: spherical conversion ----------------------------------
        // Organization always runs in (θ, φ) space; the flag only controls
        // which coordinates are *compressed*.
        let t = Instant::now();
        let sparse_pts: Vec<Point3> = sparse_idx.iter().map(|&i| points[i]).collect();
        let sparse_sph: Vec<Spherical> =
            sparse_pts.iter().map(|p| p.to_spherical()).collect();
        timing.cor = t.elapsed();

        // ---- grouping by radial distance --------------------------------
        // `order[g]` lists indices into sparse_pts for group g, ascending r.
        let mut by_r: Vec<u32> = (0..sparse_pts.len() as u32).collect();
        by_r.sort_by(|&a, &b| {
            sparse_sph[a as usize]
                .r
                .partial_cmp(&sparse_sph[b as usize].r)
                .expect("radial distances are finite")
        });
        let n_groups = cfg.groups.min(by_r.len().max(1));
        let group_size = by_r.len().div_ceil(n_groups.max(1));
        let groups: Vec<&[u32]> = if by_r.is_empty() {
            vec![&[][..]; n_groups]
        } else {
            by_r.chunks(group_size.max(1)).collect()
        };

        // ---- header ------------------------------------------------------
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        write_f64(&mut out, cfg.q_xyz);
        write_f64(&mut out, cfg.sensor.u_theta());
        write_f64(&mut out, cfg.sensor.u_phi());
        write_f64(&mut out, cfg.th_r);
        let mut flags = 0u8;
        if cfg.spherical_conversion {
            flags |= FLAG_SPHERICAL;
        }
        if cfg.radial_optimized {
            flags |= FLAG_RADIAL;
        }
        out.push(flags);
        write_uvarint(&mut out, groups.len() as u64);
        write_uvarint(&mut out, points.len() as u64);
        sections.header = out.len();

        // ---- B_dense ------------------------------------------------------
        let dense_mark = out.len();
        write_uvarint(&mut out, dense_enc.bytes.len() as u64);
        out.extend_from_slice(&dense_enc.bytes);
        sections.dense = out.len() - dense_mark;

        // ---- sparse groups -------------------------------------------------
        let mut mapping = vec![usize::MAX; points.len()];
        for (i, &orig) in dense_idx.iter().enumerate() {
            mapping[orig] = dense_enc.mapping[i];
        }
        let mut cursor = dense_pts.len();
        let mut outliers_global: Vec<u32> = Vec::new(); // indices into sparse_pts
        let mut polyline_count = 0usize;
        let sparse_mark = out.len();
        let mut org_time = std::time::Duration::ZERO;
        let mut spa_time = std::time::Duration::ZERO;

        for group in &groups {
            let g_sph: Vec<Spherical> =
                group.iter().map(|&i| sparse_sph[i as usize]).collect();
            let g_cart: Vec<Point3> = group.iter().map(|&i| sparse_pts[i as usize]).collect();
            let r_max = g_sph.iter().map(|s| s.r).fold(0.0f64, f64::max);

            // ORG: Algorithm 1.
            let t = Instant::now();
            let organized = organize_sparse_points(
                &g_sph,
                &g_cart,
                cfg.sensor.u_theta(),
                cfg.sensor.u_phi(),
                cfg.min_polyline_len,
            );
            org_time += t.elapsed();

            // SPA: steps 1-9.
            let t = Instant::now();
            let (lines_q, codec_cfg) = self.quantize_lines(&organized.polylines, &g_sph, &g_cart, r_max);
            write_f64(&mut out, r_max);
            encode_group(&mut out, &lines_q, &codec_cfg);
            spa_time += t.elapsed();

            // Mapping for polyline points (flattened, in line order).
            for line in &organized.polylines {
                for &local in line {
                    mapping[sparse_idx[group[local as usize] as usize]] = cursor;
                    cursor += 1;
                }
            }
            polyline_count += organized.polylines.len();
            outliers_global.extend(organized.outliers.iter().map(|&l| group[l as usize]));
        }
        timing.org = org_time;
        timing.spa = spa_time;
        sections.sparse = out.len() - sparse_mark;

        // ---- B_outlier ------------------------------------------------------
        let outlier_mark = out.len();
        let t = Instant::now();
        let outlier_pts: Vec<Point3> =
            outliers_global.iter().map(|&i| sparse_pts[i as usize]).collect();
        let outlier_mapping =
            encode_outliers(&mut out, &outlier_pts, cfg.q_xyz, cfg.outlier_mode);
        for (k, &i) in outliers_global.iter().enumerate() {
            mapping[sparse_idx[i as usize]] = cursor + outlier_mapping[k];
        }
        timing.out = t.elapsed();
        sections.outlier = out.len() - outlier_mark;

        debug_assert!(
            mapping.iter().all(|&m| m != usize::MAX),
            "every input point must be mapped"
        );

        let stats = CompressionStats {
            total_points: points.len(),
            dense_points: dense_pts.len(),
            sparse_points: sparse_pts.len() - outlier_pts.len(),
            outlier_points: outlier_pts.len(),
            polylines: polyline_count,
            sections,
            timing,
        };
        Ok(CompressedFrame { bytes: out, mapping, stats })
    }

    /// Dense/sparse classification.
    fn split(&self, points: &[Point3]) -> DensitySplit {
        match self.config.split {
            SplitStrategy::Density(alg) => {
                let params = self.config.cluster_params();
                match alg {
                    ClusteringAlgorithm::Approximate => approx_cluster(points, params),
                    ClusteringAlgorithm::CellBased => cell_based_cluster(points, params),
                    ClusteringAlgorithm::Dbscan => dbscan(points, params).split(),
                }
            }
            SplitStrategy::NearestFraction(f) => {
                let mut order: Vec<u32> = (0..points.len() as u32).collect();
                order.sort_by(|&a, &b| {
                    points[a as usize]
                        .norm()
                        .partial_cmp(&points[b as usize].norm())
                        .expect("coordinates are finite")
                });
                let n_dense = (points.len() as f64 * f).round() as usize;
                let mut dense = vec![false; points.len()];
                for &i in order.iter().take(n_dense) {
                    dense[i as usize] = true;
                }
                DensitySplit { dense }
            }
        }
    }

    /// Step 1 (coordinate scaling) for one group: quantize the polyline
    /// points and derive the group codec configuration.
    fn quantize_lines(
        &self,
        lines: &[Vec<u32>],
        sph: &[Spherical],
        cart: &[Point3],
        r_max: f64,
    ) -> (Vec<Vec<[i64; 3]>>, GroupCodecConfig) {
        let cfg = &self.config;
        if cfg.spherical_conversion {
            let sq = SphericalQuant::from_error_bound(cfg.q_xyz, r_max);
            let q_lines = lines
                .iter()
                .map(|line| line.iter().map(|&i| sq.quantize(sph[i as usize])).collect())
                .collect();
            let codec_cfg = GroupCodecConfig {
                radial: cfg.radial_optimized,
                th_phi: (2.0 * cfg.sensor.u_phi() / sq.angle_step()).round() as i64,
                th_r: (cfg.th_r / sq.r_step()).round() as i64,
            };
            (q_lines, codec_cfg)
        } else {
            let qp = QuantParams::cartesian(cfg.q_xyz);
            let q_lines = lines
                .iter()
                .map(|line| {
                    line.iter()
                        .map(|&i| {
                            let p = cart[i as usize];
                            [
                                quantize(p.x, qp.step[0]),
                                quantize(p.y, qp.step[1]),
                                quantize(p.z, qp.step[2]),
                            ]
                        })
                        .collect()
                })
                .collect();
            (q_lines, GroupCodecConfig { radial: false, th_phi: 1, th_r: 1 })
        }
    }
}
