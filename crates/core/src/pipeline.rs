//! The DBGC compressor: clustering → octree → conversion → grouping →
//! organization → coordinate compression → outlier compression → layout
//! (paper §3, Fig. 2 client side).

use std::time::Instant;

use dbgc_clustering::{approx_cluster_threads, cell_based_cluster, dbscan, DensitySplit};
use dbgc_codec::varint::{write_f64, write_uvarint};
use dbgc_geom::quant::{quantize, QuantParams, SphericalQuant};
use dbgc_geom::{Aabb, Point3, PointCloud, Spherical};
use dbgc_octree::OctreeCodec;

use crate::config::{ClusteringAlgorithm, DbgcConfig, OutlierMode, SplitStrategy};
use crate::index::{append_index_trailer, GroupEntry, SectionEntry, SpatialDirectory};
use crate::outlier::encode_outliers;
use crate::par;
use crate::sparse::codec::{encode_group_to_buf, GroupCodecConfig, ScratchBuffers};
use crate::sparse::organize::{organize_sparse_points_into, OrganizeScratch, Organized};
use crate::stats::{CompressionStats, SectionSizes, TimingBreakdown};
use crate::DbgcError;

/// Optional metrics sink threaded through the pipeline. With the `metrics`
/// feature off this is an uninhabited `Option` (always `None`), so every
/// recording site compiles to nothing.
#[cfg(feature = "metrics")]
pub(crate) type MetricsOpt<'a> = Option<&'a dbgc_metrics::Collector>;
/// Disabled-`metrics` stand-in: an `Option` that can never be `Some`.
#[cfg(not(feature = "metrics"))]
pub(crate) type MetricsOpt<'a> = Option<&'a std::convert::Infallible>;

/// Optional parent-span handle passed into per-group encoding.
#[cfg(feature = "metrics")]
type SpanOpt<'a> = Option<&'a dbgc_metrics::Span>;
#[cfg(not(feature = "metrics"))]
type SpanOpt<'a> = Option<&'a std::convert::Infallible>;

/// Per-thread working memory for one group's ORG + SPA: codec scratch,
/// organizer scratch, the gathered per-group coordinate arrays, and the
/// quantized-line buffers (with a pool of spare line vectors recycled across
/// groups). Purely an allocation cache — the encoded bytes are identical for
/// any scratch state.
#[derive(Debug, Default)]
struct GroupScratch {
    codec: ScratchBuffers,
    org: OrganizeScratch,
    g_sph: Vec<Spherical>,
    g_cart: Vec<Point3>,
    lines_q: Vec<Vec<[i64; 3]>>,
    line_pool: Vec<Vec<[i64; 3]>>,
}

std::thread_local! {
    /// Per-thread group scratch: reused across groups and frames, both on
    /// the calling thread (serial mode) and on pool workers.
    static SCRATCH: std::cell::RefCell<GroupScratch> =
        std::cell::RefCell::new(GroupScratch::default());
}

/// Stream magic and version.
pub(crate) const MAGIC: [u8; 4] = *b"DBGC";
pub(crate) const VERSION: u8 = 1;
/// Stream version for frames whose dense section uses the two-lane
/// occupancy coder; everything else is identical to version 1.
pub(crate) const VERSION_DUAL: u8 = 2;
/// Stream version for the wide entropy profile: the dense occupancy bytes
/// *and* every range-coded sparse/radial frame go through the four-lane
/// interleaved coder (`dbgc_codec::wide`). Deflate frames and all framing
/// outside the entropy payloads are identical to version 1.
pub(crate) const VERSION_WIDE: u8 = 3;

pub(crate) const FLAG_SPHERICAL: u8 = 0b01;
pub(crate) const FLAG_RADIAL: u8 = 0b10;

/// A compressed frame: the bitstream plus encoder-side metadata.
#[derive(Debug, Clone)]
pub struct CompressedFrame {
    /// The bit sequence `B`.
    pub bytes: Vec<u8>,
    /// One-to-one mapping: `mapping[i]` is the index of input point `i` in
    /// the decompressed cloud (paper problem statement condition 2).
    pub mapping: Vec<usize>,
    /// Sizes, counts and timing breakdown.
    pub stats: CompressionStats,
    /// The spatial directory carried in the stream's index trailer
    /// (`Some` iff [`DbgcConfig::spatial_index`] was on).
    pub directory: Option<SpatialDirectory>,
}

impl CompressedFrame {
    /// Compression ratio against 12-byte raw points.
    pub fn compression_ratio(&self) -> f64 {
        self.stats.compression_ratio()
    }
}

/// Outcome of ORG + SPA on one radial group, produced on any thread and
/// consumed by the deterministic in-order post-pass.
///
/// Slots live in a per-thread arena ([`GROUP_ARENA`]) and are refilled in
/// place frame after frame, so a warm compressor encodes its groups without
/// per-group allocation.
#[derive(Default)]
struct GroupResult {
    /// The group's stream section: `r_max` (f64) + encoded group.
    bytes: Vec<u8>,
    /// Polylines and outliers, indices local to the group's point array.
    organized: Organized,
    /// Time this worker spent in organization. Worker times overlap under
    /// `threads > 1`; they are only used to split the fan-out's wall-clock
    /// interval between ORG and SPA pro rata.
    org: std::time::Duration,
    /// Time this worker spent in coordinate compression (see `org`).
    spa: std::time::Duration,
    /// Directory metadata over the group's *decoded* points (`Some` iff
    /// `spatial_index` is on): exact AABB and radial interval of the values
    /// the decoder will reconstruct, plus the decoded point count.
    meta: Option<GroupMeta>,
}

/// Decoded-point bounds of one sparse group, computed at encode time by
/// dequantizing the quantized polylines with the decoder's exact arithmetic.
#[derive(Debug, Clone, Copy, Default)]
struct GroupMeta {
    points: usize,
    aabb: Option<Aabb>,
    r_min: f64,
    r_max: f64,
}

std::thread_local! {
    /// Per-thread arena of group-result slots, reused across frames on the
    /// thread driving `compress` (workers fill the slots through disjoint
    /// `&mut` borrows handed out by the slot-reuse fan-out).
    static GROUP_ARENA: std::cell::RefCell<Vec<GroupResult>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Inflate an AABB by `d` on every axis (identity on `None`).
fn inflate(bb: Option<Aabb>, d: f64) -> Option<Aabb> {
    let pad = Point3::new(d, d, d);
    bb.map(|bb| Aabb { min: bb.min - pad, max: bb.max + pad })
}

/// Conservative AABB of the *decoded* outlier section.
///
/// Quadtree/octree modes reconstruct each coordinate within `q_xyz` of its
/// input, so the input AABB inflated by `q_xyz` bounds them. `None` mode
/// stores `f32` casts — bounded exactly by the AABB of the casted values.
fn outlier_aabb(points: &[Point3], q_xyz: f64, mode: OutlierMode) -> Option<Aabb> {
    match mode {
        OutlierMode::Quadtree | OutlierMode::Octree => inflate(Aabb::from_points(points), q_xyz),
        OutlierMode::None => {
            let cast: Vec<Point3> = points
                .iter()
                .map(|p| Point3::new(p.x as f32 as f64, p.y as f32 as f64, p.z as f32 as f64))
                .collect();
            Aabb::from_points(&cast)
        }
    }
}

/// The DBGC compressor.
#[derive(Debug, Clone, Default)]
pub struct Dbgc {
    /// The configuration every `compress` call uses.
    pub config: DbgcConfig,
}

impl Dbgc {
    /// A compressor with an explicit configuration.
    pub fn new(config: DbgcConfig) -> Dbgc {
        Dbgc { config }
    }

    /// Paper defaults at the given error bound.
    pub fn with_error_bound(q_xyz: f64) -> Dbgc {
        Dbgc::new(DbgcConfig::with_error_bound(q_xyz))
    }

    /// Compress a point cloud into a DBGC bitstream.
    pub fn compress(&self, cloud: &PointCloud) -> Result<CompressedFrame, DbgcError> {
        self.compress_impl(cloud, None)
    }

    /// [`compress`](Dbgc::compress), recording observability data into
    /// `collector`: a `compress` span with per-stage children (`den`, `oct`,
    /// `cor`, `sparse_groups` with per-group `org`/`spa` children finished on
    /// whichever pool worker ran them, `out`), per-substream byte accounting
    /// (`header`/`dense`/`sparse`/`outlier`, summing to the stream size),
    /// and frame/point counters. The bitstream is byte-identical to the
    /// uninstrumented path.
    #[cfg(feature = "metrics")]
    pub fn compress_with_metrics(
        &self,
        cloud: &PointCloud,
        collector: &dbgc_metrics::Collector,
    ) -> Result<CompressedFrame, DbgcError> {
        self.compress_impl(cloud, Some(collector))
    }

    fn compress_impl(
        &self,
        cloud: &PointCloud,
        m: MetricsOpt,
    ) -> Result<CompressedFrame, DbgcError> {
        #[cfg(not(feature = "metrics"))]
        let _ = m;
        let cfg = &self.config;
        cfg.validate().map_err(DbgcError::InvalidConfig)?;
        if let Some(i) = cloud.iter().position(|p| !p.is_finite()) {
            return Err(DbgcError::NonFinitePoint { index: i });
        }
        let points = cloud.points();
        let mut timing = TimingBreakdown::default();
        let mut sections = SectionSizes::default();
        #[cfg(feature = "metrics")]
        let root = m.map(|c| c.span("compress"));

        // ---- DEN: dense/sparse split -----------------------------------
        #[cfg(feature = "metrics")]
        let stage = root.as_ref().map(|s| s.child("den"));
        let t = Instant::now();
        let split = self.split(points);
        timing.den = t.elapsed();
        #[cfg(feature = "metrics")]
        drop(stage);
        let (dense_idx, sparse_idx) = split.partition_indices();
        let dense_pts: Vec<Point3> = dense_idx.iter().map(|&i| points[i]).collect();

        // ---- OCT: octree over dense points ------------------------------
        #[cfg(feature = "metrics")]
        let stage = root.as_ref().map(|s| s.child("oct"));
        let t = Instant::now();
        let dense_enc =
            OctreeCodec::baseline().with_profile(cfg.entropy_profile).encode(&dense_pts, cfg.q_xyz);
        timing.oct = t.elapsed();
        #[cfg(feature = "metrics")]
        drop(stage);

        // ---- COR: spherical conversion ----------------------------------
        // Organization always runs in (θ, φ) space; the flag only controls
        // which coordinates are *compressed*. Per-point conversions are
        // independent, so they fan out over the pool.
        #[cfg(feature = "metrics")]
        let stage = root.as_ref().map(|s| s.child("cor"));
        let t = Instant::now();
        let sparse_pts: Vec<Point3> = sparse_idx.iter().map(|&i| points[i]).collect();
        let sparse_sph: Vec<Spherical> =
            par::map(cfg.threads, None, &sparse_pts, |_, p| p.to_spherical());
        timing.cor = t.elapsed();
        #[cfg(feature = "metrics")]
        drop(stage);

        // ---- grouping by radial distance --------------------------------
        // `order[g]` lists indices into sparse_pts for group g, ascending r.
        // Keyed on (r, index), the unstable sort is a total order that
        // reproduces the stable sort's tie behaviour exactly.
        let mut by_r: Vec<u32> = (0..sparse_pts.len() as u32).collect();
        by_r.sort_unstable_by(|&a, &b| {
            sparse_sph[a as usize].r.total_cmp(&sparse_sph[b as usize].r).then(a.cmp(&b))
        });
        let n_groups = cfg.groups.min(by_r.len().max(1));
        let group_size = by_r.len().div_ceil(n_groups.max(1));
        let groups: Vec<&[u32]> = if by_r.is_empty() {
            vec![&[][..]; n_groups]
        } else {
            by_r.chunks(group_size.max(1)).collect()
        };

        // ---- header ------------------------------------------------------
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.push(match cfg.entropy_profile {
            dbgc_codec::EntropyProfile::Narrow => VERSION,
            dbgc_codec::EntropyProfile::Dual => VERSION_DUAL,
            dbgc_codec::EntropyProfile::Wide => VERSION_WIDE,
        });
        write_f64(&mut out, cfg.q_xyz);
        write_f64(&mut out, cfg.sensor.u_theta());
        write_f64(&mut out, cfg.sensor.u_phi());
        write_f64(&mut out, cfg.th_r);
        let mut flags = 0u8;
        if cfg.spherical_conversion {
            flags |= FLAG_SPHERICAL;
        }
        if cfg.radial_optimized {
            flags |= FLAG_RADIAL;
        }
        out.push(flags);
        write_uvarint(&mut out, groups.len() as u64);
        write_uvarint(&mut out, points.len() as u64);
        sections.header = out.len();

        // ---- B_dense ------------------------------------------------------
        let dense_mark = out.len();
        write_uvarint(&mut out, dense_enc.bytes.len() as u64);
        out.extend_from_slice(&dense_enc.bytes);
        sections.dense = out.len() - dense_mark;

        // ---- sparse groups -------------------------------------------------
        let mut mapping = vec![usize::MAX; points.len()];
        for (i, &orig) in dense_idx.iter().enumerate() {
            mapping[orig] = dense_enc.mapping[i];
        }
        let mut cursor = dense_pts.len();
        let mut outliers_global: Vec<u32> = Vec::new(); // indices into sparse_pts
        let mut polyline_count = 0usize;
        let mut group_entries: Vec<GroupEntry> = Vec::new();
        let sparse_mark = out.len();

        // ORG + SPA per group, fanned out over the pool (grain 1: groups are
        // few and expensive, so the work-stealing counter hands them out one
        // at a time). Each group encodes into a persistent arena slot — the
        // slot's buffers are refilled in place, so a warm compressor runs
        // this fan-out without per-group allocation. Buffers are spliced
        // into the stream in group order below, so the bitstream is
        // byte-identical to the serial in-place loop.
        #[cfg(feature = "metrics")]
        let group_stage = root.as_ref().map(|s| s.child("sparse_groups"));
        #[cfg(feature = "metrics")]
        let group_span: SpanOpt = group_stage.as_ref();
        #[cfg(not(feature = "metrics"))]
        let group_span: SpanOpt = None;
        let group_wall = Instant::now();
        let mut org_cpu = std::time::Duration::ZERO;
        let mut spa_cpu = std::time::Duration::ZERO;
        let sparse_wall = GROUP_ARENA.with(|arena| {
            let arena = &mut *arena.borrow_mut();
            par::map_reuse(cfg.threads, 1, &groups, arena, |_, group, slot| {
                SCRATCH.with(|scratch| {
                    self.encode_group_into(
                        group,
                        &sparse_sph,
                        &sparse_pts,
                        &mut scratch.borrow_mut(),
                        group_span,
                        slot,
                    )
                })
            });
            let sparse_wall = group_wall.elapsed();

            // Deterministic post-pass: splice the buffers and replay the
            // bookkeeping (mapping cursor, outlier list) in group order,
            // exactly as the serial loop interleaved it. Its duration is the
            // serial merge cost the fan-out pays — the `compress.splice_us`
            // histogram makes that overhead visible next to the stage
            // speedup gauges.
            #[cfg(feature = "metrics")]
            let splice_start = Instant::now();
            for (group, result) in groups.iter().zip(arena.iter()) {
                if let Some(meta) = &result.meta {
                    group_entries.push(GroupEntry {
                        section: SectionEntry {
                            offset: out.len(),
                            len: result.bytes.len(),
                            points: meta.points,
                            aabb: meta.aabb,
                        },
                        r_min: meta.r_min,
                        r_max: meta.r_max,
                    });
                }
                out.extend_from_slice(&result.bytes);
                for line in &result.organized.polylines {
                    for &local in line {
                        mapping[sparse_idx[group[local as usize] as usize]] = cursor;
                        cursor += 1;
                    }
                }
                polyline_count += result.organized.polylines.len();
                outliers_global
                    .extend(result.organized.outliers.iter().map(|&l| group[l as usize]));
                org_cpu += result.org;
                spa_cpu += result.spa;
            }
            #[cfg(feature = "metrics")]
            if let Some(c) = m {
                c.record("compress.splice_us", splice_start.elapsed().as_micros() as u64);
            }
            sparse_wall
        });
        #[cfg(feature = "metrics")]
        drop(group_stage);
        // Wall-clock stage attribution: under `threads > 1` the per-worker
        // ORG and SPA measurements overlap in time, so their sum overstates
        // the stage cost. Report the fan-out's wall-clock interval instead,
        // split between ORG and SPA pro rata by measured worker time (with
        // one thread the split reproduces the direct measurements).
        let cpu_total = org_cpu + spa_cpu;
        if !cpu_total.is_zero() {
            timing.org = sparse_wall.mul_f64(org_cpu.as_secs_f64() / cpu_total.as_secs_f64());
            timing.spa = sparse_wall.saturating_sub(timing.org);
        }
        sections.sparse = out.len() - sparse_mark;

        // ---- B_outlier ------------------------------------------------------
        #[cfg(feature = "metrics")]
        let stage = root.as_ref().map(|s| s.child("out"));
        let outlier_mark = out.len();
        let t = Instant::now();
        let outlier_pts: Vec<Point3> =
            outliers_global.iter().map(|&i| sparse_pts[i as usize]).collect();
        let outlier_mapping = encode_outliers(&mut out, &outlier_pts, cfg.q_xyz, cfg.outlier_mode);
        for (k, &i) in outliers_global.iter().enumerate() {
            mapping[sparse_idx[i as usize]] = cursor + outlier_mapping[k];
        }
        timing.out = t.elapsed();
        sections.outlier = out.len() - outlier_mark;
        #[cfg(feature = "metrics")]
        drop(stage);

        // ---- spatial-index trailer (opt-in) --------------------------------
        // Appended after the complete body, so the bytes up to this point are
        // identical with the index on or off.
        let directory = if cfg.spatial_index {
            let dir = SpatialDirectory {
                points: points.len(),
                header_len: sections.header,
                dense: SectionEntry {
                    offset: dense_mark,
                    len: sections.dense,
                    points: dense_pts.len(),
                    // Decoded leaf centres are within q_xyz (L∞) of some
                    // input point, so the input AABB inflated by q_xyz
                    // bounds every decoded dense point.
                    aabb: inflate(Aabb::from_points(&dense_pts), cfg.q_xyz),
                },
                dense_depth: dense_enc.depth,
                groups: group_entries,
                outlier: SectionEntry {
                    offset: outlier_mark,
                    len: sections.outlier,
                    points: outlier_pts.len(),
                    aabb: outlier_aabb(&outlier_pts, cfg.q_xyz, cfg.outlier_mode),
                },
            };
            let index_mark = out.len();
            append_index_trailer(&mut out, &dir.serialize());
            sections.index = out.len() - index_mark;
            Some(dir)
        } else {
            None
        };

        debug_assert!(
            mapping.iter().all(|&mapped| mapped != usize::MAX),
            "every input point must be mapped"
        );

        let stats = CompressionStats {
            total_points: points.len(),
            dense_points: dense_pts.len(),
            sparse_points: sparse_pts.len() - outlier_pts.len(),
            outlier_points: outlier_pts.len(),
            polylines: polyline_count,
            sections,
            timing,
        };
        // Per-substream byte accounting (the four channels partition the
        // stream, so they must sum to `out.len()`), plus frame counters.
        #[cfg(feature = "metrics")]
        if let Some(c) = m {
            c.add_bytes("header", sections.header as u64);
            c.add_bytes("dense", sections.dense as u64);
            c.add_bytes("sparse", sections.sparse as u64);
            c.add_bytes("outlier", sections.outlier as u64);
            if sections.index > 0 {
                c.add_bytes("index", sections.index as u64);
            }
            c.incr("compress.frames", 1);
            c.incr("compress.points_in", stats.total_points as u64);
            c.incr("compress.points_dense", stats.dense_points as u64);
            c.incr("compress.points_sparse", stats.sparse_points as u64);
            c.incr("compress.points_outlier", stats.outlier_points as u64);
            c.incr("compress.polylines", stats.polylines as u64);
            c.record("compress.bytes_per_frame", out.len() as u64);
        }
        Ok(CompressedFrame { bytes: out, mapping, stats, directory })
    }

    /// ORG + SPA for one radial group, refilling an arena slot in place.
    ///
    /// `result.bytes` holds the group's complete stream section (`r_max`
    /// followed by the encoded group), so slots filled on any thread can be
    /// spliced into the frame in group order without re-encoding. The slot's
    /// previous contents are recycled (polyline vectors through the scratch
    /// line pool), so a warm slot encodes without allocating.
    fn encode_group_into(
        &self,
        group: &[u32],
        sparse_sph: &[Spherical],
        sparse_pts: &[Point3],
        scratch: &mut GroupScratch,
        span: SpanOpt,
        result: &mut GroupResult,
    ) {
        #[cfg(not(feature = "metrics"))]
        let _ = span;
        let cfg = &self.config;
        scratch.g_sph.clear();
        scratch.g_sph.extend(group.iter().map(|&i| sparse_sph[i as usize]));
        scratch.g_cart.clear();
        scratch.g_cart.extend(group.iter().map(|&i| sparse_pts[i as usize]));
        let r_max = scratch.g_sph.iter().map(|s| s.r).fold(0.0f64, f64::max);

        // ORG: Algorithm 1. The child span is created and finished on
        // whichever pool worker runs this group; it nests under the
        // `sparse_groups` stage span owned by the calling thread.
        #[cfg(feature = "metrics")]
        let phase = span.map(|s| s.child("org"));
        let t = Instant::now();
        organize_sparse_points_into(
            &scratch.g_sph,
            &scratch.g_cart,
            cfg.sensor.u_theta(),
            cfg.sensor.u_phi(),
            cfg.min_polyline_len,
            &mut scratch.org,
            &mut result.organized,
        );
        result.org = t.elapsed();
        #[cfg(feature = "metrics")]
        drop(phase);

        // SPA: steps 1-9.
        #[cfg(feature = "metrics")]
        let phase = span.map(|s| s.child("spa"));
        let t = Instant::now();
        let codec_cfg = self.quantize_lines_into(&result.organized.polylines, r_max, scratch);
        result.bytes.clear();
        write_f64(&mut result.bytes, r_max);
        encode_group_to_buf(&mut result.bytes, &scratch.lines_q, &codec_cfg, &mut scratch.codec);
        result.spa = t.elapsed();
        #[cfg(feature = "metrics")]
        drop(phase);

        result.meta =
            if cfg.spatial_index { Some(self.group_meta(&scratch.lines_q, r_max)) } else { None };
    }

    /// Directory metadata for one group: bounds of the points the *decoder*
    /// will reconstruct, obtained by running the decoder's own dequantization
    /// over the quantized polylines (bit-identical `f64` values), so pruning
    /// on these bounds can never drop a matching point.
    fn group_meta(&self, lines_q: &[Vec<[i64; 3]>], r_max: f64) -> GroupMeta {
        let cfg = &self.config;
        let sq =
            cfg.spherical_conversion.then(|| SphericalQuant::from_error_bound(cfg.q_xyz, r_max));
        let step = 2.0 * cfg.q_xyz;
        let mut meta = GroupMeta { points: 0, aabb: None, r_min: f64::INFINITY, r_max: 0.0 };
        for line in lines_q {
            for &q in line {
                let p = match &sq {
                    Some(sq) => sq.dequantize(q).to_cartesian(),
                    None => Point3::new(q[0] as f64 * step, q[1] as f64 * step, q[2] as f64 * step),
                };
                meta.points += 1;
                meta.aabb = Some(match meta.aabb {
                    Some(bb) => Aabb { min: bb.min.min(p), max: bb.max.max(p) },
                    None => Aabb { min: p, max: p },
                });
                let n = p.norm();
                meta.r_min = meta.r_min.min(n);
                meta.r_max = meta.r_max.max(n);
            }
        }
        meta
    }

    /// Dense/sparse classification.
    fn split(&self, points: &[Point3]) -> DensitySplit {
        match self.config.split {
            SplitStrategy::Density(alg) => {
                let params = self.config.cluster_params();
                match alg {
                    ClusteringAlgorithm::Approximate => {
                        approx_cluster_threads(points, params, self.config.threads)
                    }
                    ClusteringAlgorithm::CellBased => cell_based_cluster(points, params),
                    ClusteringAlgorithm::Dbscan => dbscan(points, params).split(),
                }
            }
            SplitStrategy::NearestFraction(f) => {
                // (norm, index) keys make the unstable sort a total order
                // matching the stable sort's tie behaviour.
                let mut order: Vec<u32> = (0..points.len() as u32).collect();
                order.sort_unstable_by(|&a, &b| {
                    points[a as usize].norm().total_cmp(&points[b as usize].norm()).then(a.cmp(&b))
                });
                let n_dense = (points.len() as f64 * f).round() as usize;
                let mut dense = vec![false; points.len()];
                for &i in order.iter().take(n_dense) {
                    dense[i as usize] = true;
                }
                DensitySplit { dense }
            }
        }
    }

    /// Step 1 (coordinate scaling) for one group: quantize the polyline
    /// points into `scratch.lines_q` and derive the group codec
    /// configuration. Line buffers are recycled through `scratch.line_pool`
    /// so a warm scratch quantizes without allocating.
    fn quantize_lines_into(
        &self,
        lines: &[Vec<u32>],
        r_max: f64,
        scratch: &mut GroupScratch,
    ) -> GroupCodecConfig {
        let cfg = &self.config;
        let out = &mut scratch.lines_q;
        let pool = &mut scratch.line_pool;
        pool.extend(out.drain(..).map(|mut l| {
            l.clear();
            l
        }));
        if cfg.spherical_conversion {
            let sq = SphericalQuant::from_error_bound(cfg.q_xyz, r_max);
            for line in lines {
                let mut q = pool.pop().unwrap_or_default();
                q.extend(line.iter().map(|&i| sq.quantize(scratch.g_sph[i as usize])));
                out.push(q);
            }
            GroupCodecConfig {
                radial: cfg.radial_optimized,
                wide: cfg.entropy_profile == dbgc_codec::EntropyProfile::Wide,
                th_phi: (2.0 * cfg.sensor.u_phi() / sq.angle_step()).round() as i64,
                th_r: (cfg.th_r / sq.r_step()).round() as i64,
            }
        } else {
            let qp = QuantParams::cartesian(cfg.q_xyz);
            for line in lines {
                let mut q = pool.pop().unwrap_or_default();
                q.extend(line.iter().map(|&i| {
                    let p = scratch.g_cart[i as usize];
                    [
                        quantize(p.x, qp.step[0]),
                        quantize(p.y, qp.step[1]),
                        quantize(p.z, qp.step[2]),
                    ]
                }));
                out.push(q);
            }
            GroupCodecConfig {
                radial: false,
                wide: cfg.entropy_profile == dbgc_codec::EntropyProfile::Wide,
                th_phi: 1,
                th_r: 1,
            }
        }
    }
}
