//! Feature-gated bridge to the workspace thread pool.
//!
//! The compressor's parallel stages all reduce to one primitive: an ordered
//! map over a slice. With the `parallel` feature the map fans out over
//! [`dbgc_parallel::ThreadPool::global`]; without it (or with
//! `threads == 1`) it is a plain serial loop. Either way `out[i] = f(i,
//! &items[i])`, so callers produce byte-identical output in every mode.

/// Ordered map over `items`, honouring [`DbgcConfig::threads`] semantics:
/// `0` = current pool size, `1` = inline serial, `n > 1` = grow the pool to
/// at least `n` first. `grain` bounds the block size handed to one worker
/// (`None` = let the pool pick).
///
/// [`DbgcConfig::threads`]: crate::config::DbgcConfig::threads
#[cfg(feature = "parallel")]
pub(crate) fn map<T: Sync, R: Send>(
    threads: usize,
    grain: Option<usize>,
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    if threads != 1 {
        let pool = dbgc_parallel::ThreadPool::global();
        if threads > 1 {
            pool.ensure_total(threads);
        }
        if pool.threads() > 1 {
            return match grain {
                Some(g) => pool.map_with_grain(items, g, f),
                None => pool.map(items, f),
            };
        }
    }
    items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
}

/// Serial fallback when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub(crate) fn map<T, R>(
    threads: usize,
    grain: Option<usize>,
    items: &[T],
    f: impl Fn(usize, &T) -> R,
) -> Vec<R> {
    let _ = (threads, grain);
    items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
}

/// Ordered slot-reuse map into a caller-owned arena (same `threads`
/// semantics as [`map`]): `f(i, &items[i], &mut out[i])` refills each slot in
/// place so slot-internal allocations persist across calls. `out` is resized
/// with `R::default()` first.
#[cfg(feature = "parallel")]
pub(crate) fn map_reuse<T: Sync, R: Default + Send>(
    threads: usize,
    grain: usize,
    items: &[T],
    out: &mut Vec<R>,
    f: impl Fn(usize, &T, &mut R) + Sync,
) {
    if threads != 1 {
        let pool = dbgc_parallel::ThreadPool::global();
        if threads > 1 {
            pool.ensure_total(threads);
        }
        if pool.threads() > 1 {
            pool.map_into(items, grain, out, f);
            return;
        }
    }
    out.resize_with(items.len(), R::default);
    for (i, (item, slot)) in items.iter().zip(out.iter_mut()).enumerate() {
        f(i, item, slot);
    }
}

/// Serial fallback when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub(crate) fn map_reuse<T, R: Default>(
    threads: usize,
    grain: usize,
    items: &[T],
    out: &mut Vec<R>,
    f: impl Fn(usize, &T, &mut R),
) {
    let _ = (threads, grain);
    out.resize_with(items.len(), R::default);
    for (i, (item, slot)) in items.iter().zip(out.iter_mut()).enumerate() {
        f(i, item, slot);
    }
}
