//! PCD (Point Cloud Data, the PCL format) I/O.
//!
//! Supports the common geometry subset: `FIELDS` containing `x y z` as
//! 4-byte floats (extra fields skipped on read), `DATA ascii` or
//! `DATA binary`.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use dbgc_geom::{Point3, PointCloud};

/// PCD encoding to write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcdFormat {
    /// One whitespace-separated line per point.
    Ascii,
    /// Packed little-endian floats.
    Binary,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serialize a cloud to PCD bytes.
pub fn to_pcd_bytes(cloud: &PointCloud, format: PcdFormat) -> Vec<u8> {
    let data = match format {
        PcdFormat::Ascii => "ascii",
        PcdFormat::Binary => "binary",
    };
    let n = cloud.len();
    let header = format!(
        "# .PCD v0.7 - Point Cloud Data file format\nVERSION 0.7\n\
         FIELDS x y z\nSIZE 4 4 4\nTYPE F F F\nCOUNT 1 1 1\n\
         WIDTH {n}\nHEIGHT 1\nVIEWPOINT 0 0 0 1 0 0 0\nPOINTS {n}\nDATA {data}\n"
    );
    let mut out = header.into_bytes();
    match format {
        PcdFormat::Ascii => {
            for p in cloud {
                out.extend_from_slice(
                    format!("{} {} {}\n", p.x as f32, p.y as f32, p.z as f32).as_bytes(),
                );
            }
        }
        PcdFormat::Binary => {
            for p in cloud {
                out.extend_from_slice(&(p.x as f32).to_le_bytes());
                out.extend_from_slice(&(p.y as f32).to_le_bytes());
                out.extend_from_slice(&(p.z as f32).to_le_bytes());
            }
        }
    }
    out
}

/// Parse PCD bytes into a cloud.
pub fn from_pcd_bytes(bytes: &[u8]) -> io::Result<PointCloud> {
    // The header is newline-separated ascii up to and including the DATA line.
    let mut offset = 0usize;
    let mut fields: Vec<String> = Vec::new();
    let mut sizes: Vec<usize> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    let mut types: Vec<String> = Vec::new();
    let mut points: Option<usize> = None;
    let mut data: Option<PcdFormat> = None;

    while offset < bytes.len() {
        let end = bytes[offset..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| offset + p)
            .ok_or_else(|| bad("PCD: unterminated header line"))?;
        let line = std::str::from_utf8(&bytes[offset..end])
            .map_err(|_| bad("PCD: non-UTF8 header"))?
            .trim()
            .to_string();
        offset = end + 1;
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("FIELDS") => fields = it.map(str::to_string).collect(),
            Some("SIZE") => {
                sizes = it.map(|v| v.parse().unwrap_or(0)).collect();
            }
            Some("TYPE") => types = it.map(str::to_string).collect(),
            Some("COUNT") => {
                counts = it.map(|v| v.parse().unwrap_or(1)).collect();
            }
            Some("POINTS") => {
                points = Some(
                    it.next().and_then(|v| v.parse().ok()).ok_or_else(|| bad("PCD: bad POINTS"))?,
                );
            }
            Some("DATA") => {
                data = match it.next() {
                    Some("ascii") => Some(PcdFormat::Ascii),
                    Some("binary") => Some(PcdFormat::Binary),
                    other => return Err(bad(format!("PCD: unsupported DATA {other:?}"))),
                };
                break; // body follows
            }
            _ => {}
        }
    }
    let n = points.ok_or_else(|| bad("PCD: missing POINTS"))?;
    let format = data.ok_or_else(|| bad("PCD: missing DATA"))?;
    if fields.is_empty() {
        return Err(bad("PCD: missing FIELDS"));
    }
    if sizes.len() != fields.len() {
        return Err(bad("PCD: SIZE/FIELDS mismatch"));
    }
    if counts.is_empty() {
        counts = vec![1; fields.len()];
    }
    if types.len() != fields.len() {
        return Err(bad("PCD: TYPE/FIELDS mismatch"));
    }

    // Locate x, y, z.
    let mut xyz_field: [Option<usize>; 3] = [None; 3];
    for (i, f) in fields.iter().enumerate() {
        let axis = match f.as_str() {
            "x" => 0,
            "y" => 1,
            "z" => 2,
            _ => continue,
        };
        if types[i] != "F" || sizes[i] != 4 || counts[i] != 1 {
            return Err(bad("PCD: x/y/z must be scalar 4-byte floats"));
        }
        xyz_field[axis] = Some(i);
    }
    if xyz_field.iter().any(|f| f.is_none()) {
        return Err(bad("PCD: FIELDS lacks x/y/z"));
    }

    let body = &bytes[offset..];
    let mut cloud = PointCloud::with_capacity(n);
    match format {
        PcdFormat::Ascii => {
            let text = std::str::from_utf8(body).map_err(|_| bad("PCD: non-UTF8 body"))?;
            // Each line has one token per field (COUNT=1 enforced for xyz;
            // other fields contribute `count` tokens).
            let token_index = |field: usize| -> usize { (0..field).map(|i| counts[i]).sum() };
            for line in text.lines().take(n) {
                let cols: Vec<&str> = line.split_whitespace().collect();
                let get = |a: usize| -> io::Result<f64> {
                    let f = xyz_field[a].expect("validated above");
                    cols.get(token_index(f))
                        .and_then(|v| v.parse::<f64>().ok())
                        .ok_or_else(|| bad("PCD: bad ascii point"))
                };
                cloud.push(Point3::new(get(0)?, get(1)?, get(2)?));
            }
        }
        PcdFormat::Binary => {
            let stride: usize = sizes.iter().zip(&counts).map(|(s, c)| s * c).sum();
            if body.len() < n * stride {
                return Err(bad("PCD: binary body shorter than declared"));
            }
            let field_offset =
                |field: usize| -> usize { (0..field).map(|i| sizes[i] * counts[i]).sum() };
            for v in 0..n {
                let at = v * stride;
                let get = |a: usize| -> f64 {
                    let off = at + field_offset(xyz_field[a].expect("validated above"));
                    f32::from_le_bytes(body[off..off + 4].try_into().expect("4 bytes")) as f64
                };
                cloud.push(Point3::new(get(0), get(1), get(2)));
            }
        }
    }
    if cloud.len() != n {
        return Err(bad("PCD: fewer points than declared"));
    }
    Ok(cloud)
}

/// Write a cloud to a `.pcd` file.
pub fn write_pcd(path: impl AsRef<Path>, cloud: &PointCloud, format: PcdFormat) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&to_pcd_bytes(cloud, format))
}

/// Read a cloud from a `.pcd` file.
pub fn read_pcd(path: impl AsRef<Path>) -> io::Result<PointCloud> {
    let mut bytes = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
    from_pcd_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointCloud {
        (0..123)
            .map(|i| Point3::new(-(i as f64) * 0.11, i as f64 * 0.5, (i % 9) as f64 * 0.25))
            .collect()
    }

    #[test]
    fn ascii_roundtrip() {
        let cloud = sample();
        let back = from_pcd_bytes(&to_pcd_bytes(&cloud, PcdFormat::Ascii)).unwrap();
        assert_eq!(back.len(), cloud.len());
        for (a, b) in cloud.iter().zip(&back) {
            assert!(a.dist(*b) < 1e-3);
        }
    }

    #[test]
    fn binary_roundtrip() {
        let cloud = sample();
        let back = from_pcd_bytes(&to_pcd_bytes(&cloud, PcdFormat::Binary)).unwrap();
        assert_eq!(back.len(), cloud.len());
        for (a, b) in cloud.iter().zip(&back) {
            assert!(a.dist(*b) < 1e-3);
        }
    }

    #[test]
    fn extra_intensity_field_is_skipped() {
        let header = "VERSION 0.7\nFIELDS x y z intensity\nSIZE 4 4 4 4\n\
                      TYPE F F F F\nCOUNT 1 1 1 1\nWIDTH 2\nHEIGHT 1\n\
                      POINTS 2\nDATA binary\n";
        let mut bytes = header.as_bytes().to_vec();
        for v in [[1.0f32, 2.0, 3.0, 0.7], [-1.0, -2.0, -3.0, 0.1]] {
            for f in v {
                bytes.extend_from_slice(&f.to_le_bytes());
            }
        }
        let cloud = from_pcd_bytes(&bytes).unwrap();
        assert_eq!(cloud.len(), 2);
        assert_eq!(cloud[1], Point3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn shuffled_field_order() {
        let header = "FIELDS z x y\nSIZE 4 4 4\nTYPE F F F\nCOUNT 1 1 1\n\
                      WIDTH 1\nHEIGHT 1\nPOINTS 1\nDATA ascii\n3.0 1.0 2.0\n";
        let cloud = from_pcd_bytes(header.as_bytes()).unwrap();
        assert_eq!(cloud[0], Point3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_pcd_bytes(b"").is_err());
        assert!(from_pcd_bytes(b"FIELDS x y\nPOINTS 1\nDATA ascii\n1 2\n").is_err());
        // Truncated binary.
        let bytes = to_pcd_bytes(&sample(), PcdFormat::Binary);
        assert!(from_pcd_bytes(&bytes[..bytes.len() - 4]).is_err());
        // Unsupported compressed data.
        assert!(from_pcd_bytes(
            b"FIELDS x y z\nSIZE 4 4 4\nTYPE F F F\nCOUNT 1 1 1\nPOINTS 0\n\
              DATA binary_compressed\n"
        )
        .is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("dbgc_pcd_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cloud.pcd");
        let cloud = sample();
        write_pcd(&path, &cloud, PcdFormat::Binary).unwrap();
        let back = read_pcd(&path).unwrap();
        assert_eq!(back.len(), cloud.len());
        std::fs::remove_file(&path).unwrap();
    }
}
