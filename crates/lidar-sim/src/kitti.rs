//! KITTI Velodyne `.bin` I/O.
//!
//! The KITTI format stores one `f32` quadruple per point: `x, y, z,
//! intensity`, little-endian, no header. DBGC compresses geometry only, so
//! intensity is written as zero and ignored on read.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

use dbgc_geom::{Point3, PointCloud};

/// Serialize a cloud to KITTI `.bin` bytes.
pub fn to_bin_bytes(cloud: &PointCloud) -> Vec<u8> {
    let mut out = Vec::with_capacity(cloud.len() * 16);
    for p in cloud {
        out.extend_from_slice(&(p.x as f32).to_le_bytes());
        out.extend_from_slice(&(p.y as f32).to_le_bytes());
        out.extend_from_slice(&(p.z as f32).to_le_bytes());
        out.extend_from_slice(&0f32.to_le_bytes());
    }
    out
}

/// Parse KITTI `.bin` bytes into a cloud.
pub fn from_bin_bytes(bytes: &[u8]) -> io::Result<PointCloud> {
    if bytes.len() % 16 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("KITTI .bin length {} is not a multiple of 16", bytes.len()),
        ));
    }
    let mut cloud = PointCloud::with_capacity(bytes.len() / 16);
    for chunk in bytes.chunks_exact(16) {
        let f = |i: usize| f32::from_le_bytes(chunk[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        cloud.push(Point3::new(f(0) as f64, f(1) as f64, f(2) as f64));
    }
    Ok(cloud)
}

/// Write a cloud to a `.bin` file.
pub fn write_bin(path: impl AsRef<Path>, cloud: &PointCloud) -> io::Result<()> {
    let mut file = File::create(path)?;
    file.write_all(&to_bin_bytes(cloud))
}

/// Read a cloud from a `.bin` file.
pub fn read_bin(path: impl AsRef<Path>) -> io::Result<PointCloud> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    from_bin_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cloud() -> PointCloud {
        (0..100).map(|i| Point3::new(i as f64 * 0.5, -(i as f64) * 0.25, (i % 7) as f64)).collect()
    }

    #[test]
    fn bytes_roundtrip() {
        let cloud = sample_cloud();
        let bytes = to_bin_bytes(&cloud);
        assert_eq!(bytes.len(), cloud.len() * 16);
        let back = from_bin_bytes(&bytes).unwrap();
        assert_eq!(back.len(), cloud.len());
        for (a, b) in cloud.iter().zip(&back) {
            // f32 precision round-trip.
            assert!(a.dist(*b) < 1e-4);
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("dbgc_kitti_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frame0.bin");
        let cloud = sample_cloud();
        write_bin(&path, &cloud).unwrap();
        let back = read_bin(&path).unwrap();
        assert_eq!(back.len(), cloud.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_length_rejected() {
        assert!(from_bin_bytes(&[0u8; 15]).is_err());
        assert!(from_bin_bytes(&[]).unwrap().is_empty());
    }
}
