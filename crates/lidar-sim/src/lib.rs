//! Synthetic Velodyne HDL-64E LiDAR simulator.
//!
//! Stands in for the paper's KITTI / Apollo / Ford captures (see DESIGN.md,
//! "Substitutions"). The compression behaviour DBGC exploits is structural —
//! dense near-field / sparse far-field radial decay, near-horizontal scan
//! rings in `(θ, φ)` space, range discontinuities at object boundaries — and
//! all of it emerges from ray casting a spinning multi-beam sensor against
//! ground + buildings + trees + vehicles:
//!
//! * [`scene`] — ray-castable primitives (ground plane, boxes, vertical
//!   cylinders, spheres) and the [`scene::Scene`] container;
//! * [`sensor`] — the beam table and scan loop, with Gaussian range noise,
//!   per-point angular jitter (so clouds are *calibrated-like*, not a raw
//!   grid) and dropout;
//! * [`presets`] — deterministic scene generators for the six evaluation
//!   scenes (KITTI campus/city/residential/road, Apollo urban, Ford campus);
//! * [`kitti`] — KITTI `.bin` reader/writer (x, y, z, intensity as `f32`);
//! * [`ply`], [`pcd`] — interchange formats used by survey and PCL-based
//!   pipelines, so restored clouds flow into downstream tools directly.

#![warn(missing_docs)]

pub mod kitti;
pub mod pcd;
pub mod ply;
pub mod presets;
pub mod scene;
pub mod sensor;

pub use presets::{frame, ScenePreset};
pub use scene::{Primitive, Scene};
pub use sensor::{LidarSimulator, NoiseModel};
