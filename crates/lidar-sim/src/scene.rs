//! Ray-castable scene primitives.
//!
//! A scene is a flat list of primitives; a scan casts one ray per (beam,
//! azimuth) sample and keeps the nearest hit. Primitives are deliberately
//! simple — large-scale LiDAR structure comes from layout, not from surface
//! detail.

use dbgc_geom::Point3;

/// A ray from `origin` along unit `dir`.
#[derive(Debug, Clone, Copy)]
pub struct Ray {
    /// Ray origin (the sensor position).
    pub origin: Point3,
    /// Unit direction.
    pub dir: Point3,
}

/// A scene primitive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Primitive {
    /// Horizontal ground plane `z = height` (hit only from above).
    Ground {
        /// Plane height (z coordinate).
        height: f64,
    },
    /// Axis-aligned box (buildings, cars, barriers).
    Box {
        /// Minimum corner.
        min: Point3,
        /// Maximum corner.
        max: Point3,
    },
    /// Vertical cylinder (tree trunks, poles).
    Cylinder {
        /// Axis x.
        cx: f64,
        /// Axis y.
        cy: f64,
        /// Cylinder radius.
        radius: f64,
        /// Bottom cap height.
        z_min: f64,
        /// Top cap height.
        z_max: f64,
    },
    /// Sphere (tree canopies).
    Sphere {
        /// Sphere centre.
        center: Point3,
        /// Sphere radius.
        radius: f64,
    },
}

impl Primitive {
    /// Nearest positive hit parameter `t` along `ray`, if any.
    pub fn intersect(&self, ray: &Ray) -> Option<f64> {
        const EPS: f64 = 1e-9;
        match *self {
            Primitive::Ground { height } => {
                if ray.dir.z.abs() < EPS {
                    return None;
                }
                let t = (height - ray.origin.z) / ray.dir.z;
                (t > EPS).then_some(t)
            }
            Primitive::Box { min, max } => {
                let mut t_near = f64::NEG_INFINITY;
                let mut t_far = f64::INFINITY;
                for axis in 0..3 {
                    let o = ray.origin[axis];
                    let d = ray.dir[axis];
                    let (lo, hi) = (min[axis], max[axis]);
                    if d.abs() < EPS {
                        if o < lo || o > hi {
                            return None;
                        }
                    } else {
                        let (t0, t1) = ((lo - o) / d, (hi - o) / d);
                        let (t0, t1) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
                        t_near = t_near.max(t0);
                        t_far = t_far.min(t1);
                        if t_near > t_far {
                            return None;
                        }
                    }
                }
                if t_near > EPS {
                    Some(t_near)
                } else if t_far > EPS {
                    // Ray starts inside the box.
                    Some(t_far)
                } else {
                    None
                }
            }
            Primitive::Cylinder { cx, cy, radius, z_min, z_max } => {
                // Solve |xy(t) - c|² = r² in the horizontal plane.
                let ox = ray.origin.x - cx;
                let oy = ray.origin.y - cy;
                let (dx, dy) = (ray.dir.x, ray.dir.y);
                let a = dx * dx + dy * dy;
                if a < EPS {
                    return None;
                }
                let b = 2.0 * (ox * dx + oy * dy);
                let c = ox * ox + oy * oy - radius * radius;
                let disc = b * b - 4.0 * a * c;
                if disc < 0.0 {
                    return None;
                }
                let sq = disc.sqrt();
                for t in [(-b - sq) / (2.0 * a), (-b + sq) / (2.0 * a)] {
                    if t > EPS {
                        let z = ray.origin.z + t * ray.dir.z;
                        if z >= z_min && z <= z_max {
                            return Some(t);
                        }
                    }
                }
                None
            }
            Primitive::Sphere { center, radius } => {
                let oc = ray.origin - center;
                let b = 2.0 * oc.dot(ray.dir);
                let c = oc.norm2() - radius * radius;
                let disc = b * b - 4.0 * c;
                if disc < 0.0 {
                    return None;
                }
                let sq = disc.sqrt();
                for t in [(-b - sq) / 2.0, (-b + sq) / 2.0] {
                    if t > EPS {
                        return Some(t);
                    }
                }
                None
            }
        }
    }
}

/// A flat collection of primitives.
#[derive(Debug, Clone, Default)]
pub struct Scene {
    /// Flat list of ray-castable primitives.
    pub primitives: Vec<Primitive>,
}

impl Scene {
    /// An empty scene.
    pub fn new() -> Scene {
        Scene::default()
    }

    /// Add a primitive.
    pub fn push(&mut self, p: Primitive) {
        self.primitives.push(p);
    }

    /// Nearest hit distance along `ray`, capped at `max_range`.
    pub fn cast(&self, ray: &Ray, max_range: f64) -> Option<f64> {
        let mut best = max_range;
        let mut hit = false;
        for p in &self.primitives {
            if let Some(t) = p.intersect(ray) {
                if t < best {
                    best = t;
                    hit = true;
                }
            }
        }
        hit.then_some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ray(o: (f64, f64, f64), d: (f64, f64, f64)) -> Ray {
        let dir = Point3::new(d.0, d.1, d.2);
        Ray { origin: Point3::new(o.0, o.1, o.2), dir: dir / dir.norm() }
    }

    #[test]
    fn ground_hit_from_above() {
        let g = Primitive::Ground { height: -1.73 };
        let t = g.intersect(&ray((0.0, 0.0, 0.0), (1.0, 0.0, -1.0))).unwrap();
        assert!((t - 1.73 * 2f64.sqrt()).abs() < 1e-9);
        // Looking up: no hit.
        assert!(g.intersect(&ray((0.0, 0.0, 0.0), (1.0, 0.0, 1.0))).is_none());
    }

    #[test]
    fn box_slab_hit() {
        let b =
            Primitive::Box { min: Point3::new(5.0, -1.0, -2.0), max: Point3::new(7.0, 1.0, 3.0) };
        let t = b.intersect(&ray((0.0, 0.0, 0.0), (1.0, 0.0, 0.0))).unwrap();
        assert!((t - 5.0).abs() < 1e-9);
        assert!(b.intersect(&ray((0.0, 5.0, 0.0), (1.0, 0.0, 0.0))).is_none());
    }

    #[test]
    fn box_ray_starting_inside() {
        let b =
            Primitive::Box { min: Point3::new(-1.0, -1.0, -1.0), max: Point3::new(1.0, 1.0, 1.0) };
        let t = b.intersect(&ray((0.0, 0.0, 0.0), (1.0, 0.0, 0.0))).unwrap();
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cylinder_hit_within_height() {
        let c = Primitive::Cylinder { cx: 10.0, cy: 0.0, radius: 0.5, z_min: -2.0, z_max: 5.0 };
        let t = c.intersect(&ray((0.0, 0.0, 0.0), (1.0, 0.0, 0.0))).unwrap();
        assert!((t - 9.5).abs() < 1e-9);
        // Above the cylinder cap: miss.
        assert!(c.intersect(&ray((0.0, 0.0, 10.0), (1.0, 0.0, 0.0))).is_none());
    }

    #[test]
    fn sphere_hit() {
        let s = Primitive::Sphere { center: Point3::new(0.0, 20.0, 0.0), radius: 2.0 };
        let t = s.intersect(&ray((0.0, 0.0, 0.0), (0.0, 1.0, 0.0))).unwrap();
        assert!((t - 18.0).abs() < 1e-9);
    }

    #[test]
    fn scene_nearest_hit_wins() {
        let mut scene = Scene::new();
        scene.push(Primitive::Ground { height: -1.73 });
        scene.push(Primitive::Box {
            min: Point3::new(3.0, -1.0, -2.0),
            max: Point3::new(4.0, 1.0, 2.0),
        });
        let r = ray((0.0, 0.0, 0.0), (1.0, 0.0, -0.05));
        let t = scene.cast(&r, 120.0).unwrap();
        assert!((t - 3.0 * (1.0 + 0.05 * 0.05f64).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn max_range_caps_hits() {
        let mut scene = Scene::new();
        scene.push(Primitive::Ground { height: -1.73 });
        // Nearly horizontal ray hits ground far beyond 120 m.
        let r = ray((0.0, 0.0, 0.0), (1.0, 0.0, -0.001));
        assert!(scene.cast(&r, 120.0).is_none());
    }
}
