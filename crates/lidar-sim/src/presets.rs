//! Deterministic scene presets mirroring the paper's six evaluation scenes.
//!
//! Layouts are procedurally generated from a seed; frame `k` advances the
//! sensor ~1 m along the road (10 fps at urban speed), so consecutive frames
//! overlap like a real drive.

use rand::{Rng, SeedableRng};

use dbgc_geom::{Point3, PointCloud, SensorMeta};

use crate::scene::{Primitive, Scene};
use crate::sensor::{LidarSimulator, NoiseModel};

/// The six evaluation scenes of paper §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenePreset {
    /// KITTI campus scene: large buildings, many trees, open space.
    KittiCampus,
    /// KITTI city scene: street canyon with façades, cars, poles.
    KittiCity,
    /// KITTI residential scene: houses, fences, garden trees.
    KittiResidential,
    /// KITTI road scene: open highway with guard rails.
    KittiRoad,
    /// Apollo urban scene: narrow street, tall buildings.
    ApolloUrban,
    /// Ford campus scene (~80 K points: fewer scan columns).
    FordCampus,
}

impl ScenePreset {
    /// All presets, in the paper's Fig. 9 order.
    pub fn all() -> [ScenePreset; 6] {
        [
            ScenePreset::KittiCampus,
            ScenePreset::KittiCity,
            ScenePreset::KittiResidential,
            ScenePreset::KittiRoad,
            ScenePreset::ApolloUrban,
            ScenePreset::FordCampus,
        ]
    }

    /// The four KITTI scenes (Fig. 9a–d).
    pub fn kitti() -> [ScenePreset; 4] {
        [
            ScenePreset::KittiCampus,
            ScenePreset::KittiCity,
            ScenePreset::KittiResidential,
            ScenePreset::KittiRoad,
        ]
    }

    /// Kebab-case scene name used by the CLI and reports.
    pub fn name(self) -> &'static str {
        match self {
            ScenePreset::KittiCampus => "kitti-campus",
            ScenePreset::KittiCity => "kitti-city",
            ScenePreset::KittiResidential => "kitti-residential",
            ScenePreset::KittiRoad => "kitti-road",
            ScenePreset::ApolloUrban => "apollo-urban",
            ScenePreset::FordCampus => "ford-campus",
        }
    }

    /// Sensor metadata for the preset. KITTI and Apollo frames carry ~100 K
    /// points, Ford ~80 K (paper §4.1); the Ford sensor therefore scans fewer
    /// columns.
    pub fn sensor_meta(self) -> SensorMeta {
        let mut meta = SensorMeta::velodyne_hdl64e();
        if self == ScenePreset::FordCampus {
            meta.h_samples = 1700;
        }
        meta
    }

    /// Build the static scene for this preset.
    pub fn build_scene(self, seed: u64) -> Scene {
        // Mix the preset into the seed so different presets with the same
        // user seed produce unrelated layouts.
        let seed = seed ^ (self as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut scene = Scene::new();
        scene.push(Primitive::Ground { height: -1.73 });
        match self {
            ScenePreset::KittiCampus | ScenePreset::FordCampus => {
                campus_layout(&mut scene, &mut rng)
            }
            ScenePreset::KittiCity => city_layout(&mut scene, &mut rng, 14.0, 25.0),
            ScenePreset::KittiResidential => residential_layout(&mut scene, &mut rng),
            ScenePreset::KittiRoad => road_layout(&mut scene, &mut rng),
            ScenePreset::ApolloUrban => city_layout(&mut scene, &mut rng, 10.0, 45.0),
        }
        scene
    }
}

fn boxed(scene: &mut Scene, cx: f64, cy: f64, w: f64, d: f64, h: f64) {
    scene.push(Primitive::Box {
        min: Point3::new(cx - w / 2.0, cy - d / 2.0, -1.73),
        max: Point3::new(cx + w / 2.0, cy + d / 2.0, -1.73 + h),
    });
}

fn tree(scene: &mut Scene, x: f64, y: f64, trunk_h: f64, canopy_r: f64) {
    scene.push(Primitive::Cylinder {
        cx: x,
        cy: y,
        radius: 0.25,
        z_min: -1.73,
        z_max: -1.73 + trunk_h,
    });
    scene.push(Primitive::Sphere {
        center: Point3::new(x, y, -1.73 + trunk_h + canopy_r * 0.6),
        radius: canopy_r,
    });
}

fn pole(scene: &mut Scene, x: f64, y: f64) {
    scene.push(Primitive::Cylinder { cx: x, cy: y, radius: 0.1, z_min: -1.73, z_max: 6.0 });
}

fn car(scene: &mut Scene, cx: f64, cy: f64, along_x: bool) {
    let (w, d) = if along_x { (4.2, 1.8) } else { (1.8, 4.2) };
    boxed(scene, cx, cy, w, d, 1.5);
}

/// Campus: large buildings around open space, many trees, scattered poles.
fn campus_layout(scene: &mut Scene, rng: &mut rand::rngs::StdRng) {
    for _ in 0..8 {
        let r = rng.gen_range(25.0..70.0);
        let th = rng.gen_range(0.0..std::f64::consts::TAU);
        boxed(
            scene,
            r * th.cos(),
            r * th.sin(),
            rng.gen_range(15.0..35.0),
            rng.gen_range(10.0..25.0),
            rng.gen_range(8.0..20.0),
        );
    }
    for _ in 0..45 {
        let r = rng.gen_range(8.0..60.0);
        let th = rng.gen_range(0.0..std::f64::consts::TAU);
        tree(scene, r * th.cos(), r * th.sin(), rng.gen_range(2.5..5.0), rng.gen_range(1.5..3.5));
    }
    for _ in 0..10 {
        let r = rng.gen_range(5.0..40.0);
        let th = rng.gen_range(0.0..std::f64::consts::TAU);
        pole(scene, r * th.cos(), r * th.sin());
    }
    for _ in 0..4 {
        car(
            scene,
            rng.gen_range(-30.0..30.0),
            rng.gen_range(8.0..20.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
            rng.gen_bool(0.5),
        );
    }
}

/// City street canyon along the x axis: façades at ±`street_half`, height up
/// to `max_height`, parked cars, poles.
fn city_layout(scene: &mut Scene, rng: &mut rand::rngs::StdRng, street_half: f64, max_height: f64) {
    let mut x = -90.0;
    while x < 90.0 {
        let w = rng.gen_range(10.0..22.0);
        for side in [-1.0, 1.0] {
            let depth = rng.gen_range(8.0..18.0);
            let setback = rng.gen_range(0.0..3.0);
            boxed(
                scene,
                x + w / 2.0,
                side * (street_half + setback + depth / 2.0),
                w - rng.gen_range(0.5..2.5),
                depth,
                rng.gen_range(max_height * 0.3..max_height),
            );
        }
        x += w;
    }
    for _ in 0..12 {
        car(
            scene,
            rng.gen_range(-60.0..60.0),
            rng.gen_range(street_half - 8.0..street_half - 2.0)
                * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
            true,
        );
    }
    for k in 0..10 {
        let x = -75.0 + k as f64 * 15.0 + rng.gen_range(-2.0..2.0);
        pole(scene, x, (street_half - 1.0) * if k % 2 == 0 { 1.0 } else { -1.0 });
    }
    for _ in 0..8 {
        let x = rng.gen_range(-50.0..50.0);
        tree(
            scene,
            x,
            (street_half - 1.5) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
            rng.gen_range(2.0..4.0),
            rng.gen_range(1.0..2.0),
        );
    }
}

/// Residential: small houses on a loose grid, fences, many trees.
fn residential_layout(scene: &mut Scene, rng: &mut rand::rngs::StdRng) {
    for gx in -3i32..=3 {
        for gy in -2i32..=2 {
            if gy == 0 {
                continue; // the road
            }
            if rng.gen_bool(0.2) {
                continue; // empty lot
            }
            let cx = gx as f64 * 24.0 + rng.gen_range(-4.0..4.0);
            let cy = gy as f64 * 20.0 + rng.gen_range(-3.0..3.0);
            boxed(
                scene,
                cx,
                cy,
                rng.gen_range(8.0..14.0),
                rng.gen_range(7.0..12.0),
                rng.gen_range(4.0..8.0),
            );
            // Garden trees.
            for _ in 0..rng.gen_range(1..4) {
                tree(
                    scene,
                    cx + rng.gen_range(-10.0..10.0),
                    cy + rng.gen_range(-8.0..8.0),
                    rng.gen_range(2.0..4.5),
                    rng.gen_range(1.0..3.0),
                );
            }
            // Fence segment facing the road.
            if gy.abs() == 1 && rng.gen_bool(0.7) {
                let fy = cy - gy.signum() as f64 * 9.0;
                scene.push(Primitive::Box {
                    min: Point3::new(cx - 10.0, fy - 0.1, -1.73),
                    max: Point3::new(cx + 10.0, fy + 0.1, -0.5),
                });
            }
        }
    }
    for _ in 0..6 {
        car(scene, rng.gen_range(-40.0..40.0), rng.gen_range(-4.0..4.0), true);
    }
}

/// Road: open highway with guard rails, sparse vehicles, far vegetation.
fn road_layout(scene: &mut Scene, rng: &mut rand::rngs::StdRng) {
    // Guard rails along both sides.
    for side in [-1.0, 1.0] {
        scene.push(Primitive::Box {
            min: Point3::new(-120.0, side * 7.0 - 0.15, -1.73),
            max: Point3::new(120.0, side * 7.0 + 0.15, -0.9),
        });
    }
    for _ in 0..5 {
        car(scene, rng.gen_range(-80.0..80.0), rng.gen_range(-5.0..5.0), true);
    }
    // A noise barrier stretch on one side.
    scene.push(Primitive::Box {
        min: Point3::new(10.0, 14.0, -1.73),
        max: Point3::new(80.0, 14.6, 2.5),
    });
    // Sparse trees beyond the rails.
    for _ in 0..18 {
        let x = rng.gen_range(-100.0..100.0);
        let y = rng.gen_range(12.0..45.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        tree(scene, x, y, rng.gen_range(3.0..6.0), rng.gen_range(2.0..4.0));
    }
}

/// Generate frame `frame_idx` of a drive through `preset` (sensor advances
/// 1 m per frame along +x). Deterministic in `(preset, seed, frame_idx)`.
pub fn frame(preset: ScenePreset, seed: u64, frame_idx: u32) -> PointCloud {
    let scene = preset.build_scene(seed);
    let sim = LidarSimulator::new(preset.sensor_meta(), NoiseModel::realistic());
    let pos = Point3::new(frame_idx as f64, 0.0, 0.0);
    sim.scan(&scene, pos, seed ^ (frame_idx as u64).wrapping_mul(0xA24BAED4963EE407))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_sizes_match_paper_scale() {
        for preset in ScenePreset::all() {
            let cloud = frame(preset, 1, 0);
            let n = cloud.len();
            let (lo, hi) = if preset == ScenePreset::FordCampus {
                (65_000, 110_000)
            } else {
                (90_000, 135_000)
            };
            assert!((lo..hi).contains(&n), "{}: {n} points outside [{lo}, {hi})", preset.name());
        }
    }

    #[test]
    fn frames_are_deterministic() {
        let a = frame(ScenePreset::KittiCity, 5, 3);
        let b = frame(ScenePreset::KittiCity, 5, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn consecutive_frames_differ_but_overlap() {
        let a = frame(ScenePreset::KittiCity, 5, 0);
        let b = frame(ScenePreset::KittiCity, 5, 1);
        assert_ne!(a, b);
        // Sizes should be in the same ballpark (same scene, shifted 1 m).
        let ratio = a.len() as f64 / b.len() as f64;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn city_scene_has_wall_points() {
        // Street canyon: a solid share of returns sit well above the ground
        // plane (z = -1.73). The HDL-64E only looks up to +2°, so "elevated"
        // means above the sensor's horizontal plane.
        let cloud = frame(ScenePreset::KittiCity, 1, 0);
        let elevated = cloud.iter().filter(|p| p.z > 0.0).count();
        assert!(
            elevated > cloud.len() / 100,
            "expected façade returns, got {elevated}/{}",
            cloud.len()
        );
        let above_ground = cloud.iter().filter(|p| p.z > -1.0).count();
        assert!(
            above_ground > cloud.len() / 10,
            "expected wall/car returns, got {above_ground}/{}",
            cloud.len()
        );
    }

    #[test]
    fn presets_produce_distinct_layouts() {
        let a = frame(ScenePreset::KittiCampus, 1, 0);
        let b = frame(ScenePreset::KittiRoad, 1, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn spider_web_density_pattern() {
        // Fig. 1 / Fig. 3b: points per unit volume fall off with radius.
        let cloud = frame(ScenePreset::KittiCity, 1, 0);
        let near = cloud.iter().filter(|p| p.norm() < 10.0).count();
        let far = cloud.iter().filter(|p| p.norm() >= 40.0).count();
        assert!(near > far / 3, "near {near}, far {far}");
        // Density per volume: near shell wins by a wide margin.
        let near_density = near as f64 / (4.0 / 3.0 * std::f64::consts::PI * 1000.0);
        let far_vol = 4.0 / 3.0 * std::f64::consts::PI * (120f64.powi(3) - 40f64.powi(3));
        let far_density = far as f64 / far_vol;
        assert!(near_density > 20.0 * far_density);
    }
}
