//! The scan loop: beams, azimuth steps, noise, jitter, dropout.

use rand::{Rng, SeedableRng};
use rand_distr_shim::Normal;

use dbgc_geom::{Point3, PointCloud, SensorMeta, Spherical};

use crate::scene::{Ray, Scene};

/// Minimal normal-distribution sampler (Box–Muller) so we don't need the
/// `rand_distr` crate.
mod rand_distr_shim {
    use rand::Rng;

    #[derive(Debug, Clone, Copy)]
    pub struct Normal {
        pub mean: f64,
        pub std_dev: f64,
    }

    impl Normal {
        pub fn new(mean: f64, std_dev: f64) -> Normal {
            Normal { mean, std_dev }
        }

        pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
            // Box–Muller transform.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            self.mean + self.std_dev * z
        }
    }
}

/// Measurement imperfections of the simulated sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Std-dev of Gaussian range noise, metres.
    pub range_sigma: f64,
    /// Per-point angular jitter as a fraction of the sample spacing; this is
    /// what makes the output *calibrated-like* instead of a raw grid.
    pub angle_jitter: f64,
    /// Probability that a returning ray is dropped (absorbing surfaces,
    /// filtering).
    pub dropout: f64,
}

impl NoiseModel {
    /// Velodyne HDL-64E-like defaults: σ ≈ 8 mm range noise, small
    /// calibration jitter (calibrated clouds deviate from the raw grid by a
    /// few hundredths of a degree, paper Fig. 5), a few percent dropout.
    pub fn realistic() -> NoiseModel {
        NoiseModel { range_sigma: 0.008, angle_jitter: 0.02, dropout: 0.04 }
    }

    /// No imperfections (raw regular grid); useful in tests.
    pub fn none() -> NoiseModel {
        NoiseModel { range_sigma: 0.0, angle_jitter: 0.0, dropout: 0.0 }
    }
}

/// A spinning multi-beam LiDAR simulator.
#[derive(Debug, Clone)]
pub struct LidarSimulator {
    /// Beam table and angular ranges.
    pub meta: SensorMeta,
    /// Measurement imperfections applied per scan.
    pub noise: NoiseModel,
}

impl LidarSimulator {
    /// A simulator with explicit metadata and noise.
    pub fn new(meta: SensorMeta, noise: NoiseModel) -> LidarSimulator {
        LidarSimulator { meta, noise }
    }

    /// HDL-64E with realistic noise.
    pub fn hdl64e() -> LidarSimulator {
        LidarSimulator::new(SensorMeta::velodyne_hdl64e(), NoiseModel::realistic())
    }

    /// Scan `scene` from `sensor_pos`, returning a sensor-centric cloud
    /// (coordinates relative to the sensor, as LiDAR data is delivered).
    ///
    /// `seed` makes the scan deterministic.
    pub fn scan(&self, scene: &Scene, sensor_pos: Point3, seed: u64) -> PointCloud {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let range_noise = Normal::new(0.0, self.noise.range_sigma.max(1e-12));
        let m = &self.meta;
        let u_theta = m.u_theta();
        let u_phi = m.u_phi();
        let mut cloud = PointCloud::with_capacity((m.h_samples * m.w_samples) as usize);

        for beam in 0..m.w_samples {
            let phi0 = m.phi_min + (beam as f64 + 0.5) * u_phi;
            for col in 0..m.h_samples {
                let theta0 = m.theta_min + (col as f64 + 0.5) * u_theta;
                // Calibration jitter on both angles.
                let theta = theta0 + rng.gen_range(-1.0..1.0) * self.noise.angle_jitter * u_theta;
                let phi = phi0 + rng.gen_range(-1.0..1.0) * self.noise.angle_jitter * u_phi;
                let dir = Spherical::new(theta, phi, 1.0).to_cartesian();
                let ray = Ray { origin: sensor_pos, dir };
                let Some(t) = scene.cast(&ray, m.r_max) else { continue };
                if t < m.r_min {
                    continue;
                }
                if self.noise.dropout > 0.0 && rng.gen_bool(self.noise.dropout) {
                    continue;
                }
                let r = if self.noise.range_sigma > 0.0 {
                    (t + range_noise.sample(&mut rng)).max(m.r_min)
                } else {
                    t
                };
                cloud.push(dir * r);
            }
        }
        cloud
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::Primitive;

    fn flat_world() -> Scene {
        let mut s = Scene::new();
        s.push(Primitive::Ground { height: -1.73 });
        s
    }

    #[test]
    fn noiseless_scan_hits_ground_exactly() {
        let sim = LidarSimulator::new(SensorMeta::velodyne_hdl64e(), NoiseModel::none());
        let cloud = sim.scan(&flat_world(), Point3::ZERO, 1);
        assert!(!cloud.is_empty());
        for p in &cloud {
            assert!((p.z + 1.73).abs() < 1e-6, "ground points at z = -1.73, got {}", p.z);
            assert!(p.norm() <= 120.0 + 1e-6);
        }
    }

    #[test]
    fn scan_is_deterministic_per_seed() {
        let sim = LidarSimulator::hdl64e();
        let a = sim.scan(&flat_world(), Point3::ZERO, 7);
        let b = sim.scan(&flat_world(), Point3::ZERO, 7);
        let c = sim.scan(&flat_world(), Point3::ZERO, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn density_decays_with_radius() {
        // The paper's Fig. 3b premise.
        let sim = LidarSimulator::hdl64e();
        let cloud = sim.scan(&flat_world(), Point3::ZERO, 2);
        let count = |lo: f64, hi: f64| {
            cloud.iter().filter(|p| p.norm() >= lo && p.norm() < hi).count() as f64
        };
        let shell_volume =
            |lo: f64, hi: f64| 4.0 / 3.0 * std::f64::consts::PI * (hi.powi(3) - lo.powi(3));
        let near = count(3.0, 10.0) / shell_volume(3.0, 10.0);
        let far = count(40.0, 80.0) / shell_volume(40.0, 80.0);
        assert!(near > 10.0 * far, "near density {near:.4} vs far {far:.6}");
    }

    #[test]
    fn jitter_breaks_the_grid() {
        // With jitter the azimuthal angles are not exact multiples of u_θ.
        let sim = LidarSimulator::new(
            SensorMeta::velodyne_hdl64e(),
            NoiseModel { range_sigma: 0.0, angle_jitter: 0.3, dropout: 0.0 },
        );
        let cloud = sim.scan(&flat_world(), Point3::ZERO, 3);
        let u = sim.meta.u_theta();
        let off_grid = cloud
            .iter()
            .filter(|p| {
                let th = p.to_spherical().theta - sim.meta.theta_min;
                let frac = (th / u).fract();
                !(0.45..=0.55).contains(&frac)
            })
            .count();
        assert!(off_grid > cloud.len() / 3, "{off_grid}/{}", cloud.len());
    }

    #[test]
    fn obstacles_occlude_ground() {
        let mut scene = flat_world();
        scene.push(Primitive::Box {
            min: Point3::new(4.0, -50.0, -2.0),
            max: Point3::new(5.0, 50.0, 10.0),
        });
        let sim = LidarSimulator::new(SensorMeta::velodyne_hdl64e(), NoiseModel::none());
        let cloud = sim.scan(&scene, Point3::ZERO, 4);
        // No point with x > 5 in the +x half-plane corridor behind the wall.
        let behind = cloud.iter().filter(|p| p.x > 5.5 && p.y.abs() < 40.0).count();
        assert_eq!(behind, 0, "wall must occlude everything behind it");
    }
}
